// Tests for machine presets and instances: the paper's published network
// parameters, topology sizing, placement policies, and the latency split.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <set>

#include "machine/machine.hpp"

namespace hps::machine {
namespace {

TEST(Presets, PaperParameters) {
  const MachineConfig c = cielito();
  EXPECT_DOUBLE_EQ(Bps_to_gbps(c.net.link_bandwidth), 10.0);
  EXPECT_EQ(c.net.end_to_end_latency, 2500);
  EXPECT_EQ(c.topology, TopologyKind::kTorus3D);

  const MachineConfig h = hopper();
  EXPECT_DOUBLE_EQ(Bps_to_gbps(h.net.link_bandwidth), 35.0);
  EXPECT_EQ(h.net.end_to_end_latency, 2575);
  EXPECT_EQ(h.topology, TopologyKind::kTorus3D);

  const MachineConfig e = edison();
  EXPECT_DOUBLE_EQ(Bps_to_gbps(e.net.link_bandwidth), 24.0);
  EXPECT_EQ(e.net.end_to_end_latency, 1300);
  EXPECT_EQ(e.topology, TopologyKind::kDragonfly);
}

TEST(Presets, LookupByNameCaseInsensitive) {
  EXPECT_EQ(machine_by_name("CIELITO").name, "cielito");
  EXPECT_EQ(machine_by_name("Edison").name, "edison");
  EXPECT_THROW(machine_by_name("summit"), Error);
  EXPECT_EQ(all_machines().size(), 3u);
}

TEST(Instance, TopologySizedForJob) {
  const MachineInstance mi(cielito(), 256, 16);
  EXPECT_GE(mi.topology().num_nodes(), 16);
  EXPECT_EQ(mi.nranks(), 256);
}

TEST(Instance, BlockPlacementGroupsRanks) {
  const MachineInstance mi(cielito(), 64, 16);
  for (Rank r = 0; r < 64; ++r) EXPECT_EQ(mi.node_of(r), r / 16);
}

TEST(Instance, RoundRobinPlacementSpreads) {
  const MachineInstance mi(cielito(), 64, 16, Placement::kRoundRobin);
  EXPECT_EQ(mi.node_of(0), 0);
  EXPECT_EQ(mi.node_of(1), 1);
  EXPECT_EQ(mi.node_of(4), 0);
}

TEST(Instance, RandomPlacementDeterministicPerSeed) {
  const MachineInstance a(cielito(), 64, 16, Placement::kRandom, 9);
  const MachineInstance b(cielito(), 64, 16, Placement::kRandom, 9);
  for (Rank r = 0; r < 64; ++r) EXPECT_EQ(a.node_of(r), b.node_of(r));
  // Every rank maps to a valid node.
  std::set<NodeId> used;
  for (Rank r = 0; r < 64; ++r) {
    EXPECT_GE(a.node_of(r), 0);
    EXPECT_LT(a.node_of(r), a.topology().num_nodes());
    used.insert(a.node_of(r));
  }
  EXPECT_EQ(used.size(), 4u);  // 64 ranks / 16 per node
}

TEST(Instance, RanksPerNodeCappedAtCores) {
  const MachineInstance mi(cielito(), 64, 99);  // cielito has 16 cores/node
  EXPECT_EQ(mi.ranks_per_node(), 16);
}

TEST(Instance, LatencySplitConsistent) {
  const MachineConfig c = cielito();
  const MachineInstance mi(c, 256, 16);
  EXPECT_GT(mi.software_overhead(), 0);
  EXPECT_GT(mi.hop_latency(), 0);
  // Reconstructed end-to-end latency over an average path is in the right
  // ballpark of the published number.
  const double avg_hops = mi.topology().average_hops();
  const double reconstructed =
      2.0 * static_cast<double>(mi.software_overhead()) +
      avg_hops * static_cast<double>(mi.hop_latency());
  EXPECT_NEAR(reconstructed, static_cast<double>(c.net.end_to_end_latency),
              0.25 * static_cast<double>(c.net.end_to_end_latency));
}

TEST(Instance, EdisonBuildsDragonfly) {
  const MachineInstance mi(edison(), 512, 16);
  EXPECT_GE(mi.topology().num_nodes(), 32);
  EXPECT_NE(mi.topology().name().find("dragonfly"), std::string::npos);
}

}  // namespace
}  // namespace hps::machine
