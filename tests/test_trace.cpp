// Unit tests for the trace module: container, builder, validation,
// serialization round trips, statistics, and Table III feature extraction.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <sstream>

#include "trace/builder.hpp"
#include "trace/features.hpp"
#include "trace/io.hpp"
#include "trace/text_format.hpp"
#include "trace/trace.hpp"
#include "trace/validate.hpp"

namespace hps::trace {
namespace {

TraceMeta meta(Rank n, const char* app = "test") {
  TraceMeta m;
  m.app = app;
  m.nranks = n;
  m.ranks_per_node = 4;
  m.machine = "cielito";
  return m;
}

TEST(Trace, WorldCommCreated) {
  Trace t(meta(4));
  EXPECT_EQ(t.num_comms(), 1u);
  EXPECT_EQ(t.comm(kCommWorld).size(), 4u);
  EXPECT_EQ(t.comm(kCommWorld)[3], 3);
}

TEST(Trace, NodesRoundUp) {
  Trace t(meta(10));
  EXPECT_EQ(t.nodes(), 3);  // 10 ranks / 4 per node
}

TEST(Trace, AddComm) {
  Trace t(meta(4));
  const CommId c = t.add_comm({1, 3});
  EXPECT_EQ(c, 1);
  EXPECT_EQ(t.comm(c).size(), 2u);
}

TEST(Builder, ComputeCoalesces) {
  Trace t(meta(2));
  RankBuilder b(t, 0);
  b.compute(100).compute(200);
  ASSERT_EQ(t.rank(0).events.size(), 1u);
  EXPECT_EQ(t.rank(0).events[0].duration, 300);
}

TEST(Builder, ZeroComputeSkipped) {
  Trace t(meta(2));
  RankBuilder b(t, 0);
  b.compute(0);
  EXPECT_TRUE(t.rank(0).events.empty());
}

TEST(Builder, RequestIdsAreUniquePerRank) {
  Trace t(meta(2));
  RankBuilder b(t, 0);
  const auto r1 = b.isend(1, 10, 0, 5);
  const auto r2 = b.irecv(1, 10, 1, 5);
  EXPECT_NE(r1, r2);
}

TEST(Builder, AlltoallvStoresVlist) {
  Trace t(meta(3));
  RankBuilder b(t, 0);
  const std::uint64_t sizes[3] = {0, 10, 20};
  b.alltoallv(sizes, 100);
  const Event& e = t.rank(0).events[0];
  EXPECT_EQ(e.type, OpType::kAlltoallv);
  EXPECT_EQ(e.bytes, 30u);
  ASSERT_EQ(t.rank(0).vlists.size(), 1u);
  EXPECT_EQ(t.rank(0).vlists[0][2], 20u);
}

Trace valid_pair_trace() {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.compute(100).send(1, 64, 5, 10);
  b1.recv(0, 64, 5, 20);
  b0.barrier(5);
  b1.barrier(5);
  return t;
}

TEST(Validate, AcceptsValidTrace) {
  const Trace t = valid_pair_trace();
  EXPECT_TRUE(validate(t).empty());
  EXPECT_NO_THROW(validate_or_throw(t));
}

TEST(Validate, DetectsUnmatchedSend) {
  Trace t(meta(2));
  RankBuilder b0(t, 0);
  b0.send(1, 64, 5, 10);
  const auto issues = validate(t);
  ASSERT_FALSE(issues.empty());
  EXPECT_THROW(validate_or_throw(t), Error);
}

TEST(Validate, DetectsSizeMismatch) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 64, 5, 10);
  b1.recv(0, 128, 5, 10);
  EXPECT_FALSE(validate(t).empty());
}

TEST(Validate, DetectsMissingWait) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.isend(1, 64, 5, 10);  // never waited
  b1.recv(0, 64, 5, 10);
  EXPECT_FALSE(validate(t).empty());
}

TEST(Validate, WaitAllCompletesRequests) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.isend(1, 64, 5, 10);
  b0.isend(1, 64, 5, 10);
  b0.waitall(5);
  b1.recv(0, 64, 5, 10);
  b1.recv(0, 64, 5, 10);
  EXPECT_TRUE(validate(t).empty());
}

TEST(Validate, DetectsCollectiveMismatch) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.allreduce(64, 10);
  b1.allreduce(128, 10);  // different payload
  EXPECT_FALSE(validate(t).empty());
}

TEST(Validate, DetectsCollectiveCountMismatch) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.barrier(5);
  b0.barrier(5);
  b1.barrier(5);
  EXPECT_FALSE(validate(t).empty());
}

TEST(Validate, AlltoallvTotalsMayDiffer) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  const std::uint64_t s0[2] = {0, 100};
  const std::uint64_t s1[2] = {999, 0};
  b0.alltoallv(s0, 10);
  b1.alltoallv(s1, 10);
  EXPECT_TRUE(validate(t).empty());
}

TEST(Validate, RootedCollectiveRootMustBeMember) {
  Trace t(meta(4));
  const CommId c = t.add_comm({0, 1});
  RankBuilder b0(t, 0), b1(t, 1);
  b0.bcast(2, 64, 10, c);  // rank 2 is not in comm c
  b1.bcast(2, 64, 10, c);
  EXPECT_FALSE(validate(t).empty());
}

TEST(Stats, CountsAndTimes) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.compute(1000).send(1, 64, 5, 100);
  b1.recv(0, 64, 5, 200);
  b0.allreduce(8, 50);
  b1.allreduce(8, 50);
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.sends, 1u);
  EXPECT_EQ(s.recvs, 1u);
  EXPECT_EQ(s.collectives, 2u);
  EXPECT_EQ(s.messages, 1u);
  EXPECT_EQ(s.bytes_p2p, 64u);
  EXPECT_EQ(s.time_compute, 1000);
  EXPECT_EQ(s.time_total, 1000 + 100 + 200 + 50 + 50);
  EXPECT_EQ(s.time_comm, 400);
  EXPECT_EQ(s.mpi_calls, 4u);
}

TEST(Stats, FirstBarrierTracked) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.barrier(100);
  b0.barrier(999);
  b1.barrier(100);
  b1.barrier(999);
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.time_first_barrier, 200);  // summed over ranks
  EXPECT_EQ(s.time_barrier, 2198);
}

TEST(Stats, MeasuredTotalIsMaxOverRanks) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.compute(500);
  b1.compute(900);
  EXPECT_EQ(t.measured_total(), 900);
}

TEST(Features, NamesMatchCount) {
  EXPECT_EQ(feature_names().size(), static_cast<std::size_t>(kNumFeatures));
  EXPECT_EQ(feature_names()[kF_CL], "CL");
  EXPECT_EQ(feature_names()[kF_R], "R");
}

TEST(Features, BasicExtraction) {
  Trace t = valid_pair_trace();
  const FeatureVector f = extract_features(t);
  EXPECT_DOUBLE_EQ(f[kF_R], 2.0);
  EXPECT_DOUBLE_EQ(f[kF_RN], 4.0);
  EXPECT_DOUBLE_EQ(f[kF_N], 1.0);
  EXPECT_DOUBLE_EQ(f[kF_NoS], 1.0);
  EXPECT_DOUBLE_EQ(f[kF_NoR], 1.0);
  EXPECT_DOUBLE_EQ(f[kF_NoB], 2.0);
  EXPECT_DOUBLE_EQ(f[kF_CL], 0.0);
  // Percentages sum sanity: compute + comm = 100.
  EXPECT_NEAR(f[kF_PoCP] + f[kF_PoC], 100.0, 1e-9);
}

TEST(Features, PercentagesBounded) {
  Trace t = valid_pair_trace();
  const FeatureVector f = extract_features(t);
  for (int i : {kF_PoCP, kF_PoC, kF_PoBR, kF_PoCOLL, kF_PoSYN, kF_PoASYN}) {
    EXPECT_GE(f[i], 0.0);
    EXPECT_LE(f[i], 100.0);
  }
}

TEST(Io, BinaryRoundTrip) {
  Trace t(meta(3, "roundtrip"));
  t.add_comm({0, 2});
  RankBuilder b0(t, 0), b1(t, 1), b2(t, 2);
  b0.compute(123).isend(1, 77, 3, 9);
  b0.waitall(1);
  b1.recv(0, 77, 3, 8);
  const std::uint64_t sizes[3] = {0, 5, 10};
  b0.alltoallv(sizes, 10);
  b1.alltoallv(sizes, 10);
  b2.alltoallv(sizes, 10);

  std::stringstream ss;
  write_binary(t, ss);
  const Trace u = read_binary(ss);

  EXPECT_EQ(u.meta().app, "roundtrip");
  EXPECT_EQ(u.nranks(), 3);
  EXPECT_EQ(u.num_comms(), 2u);
  EXPECT_EQ(u.comm(1), (std::vector<Rank>{0, 2}));
  EXPECT_EQ(u.total_events(), t.total_events());
  EXPECT_EQ(u.rank(0).events[0].duration, 123);
  EXPECT_EQ(u.rank(0).vlists[0][2], 10u);
}

TEST(Io, RejectsGarbage) {
  std::stringstream ss;
  ss << "this is not a trace";
  EXPECT_THROW(read_binary(ss), Error);
}

TEST(Io, RejectsTruncated) {
  Trace t = valid_pair_trace();
  std::stringstream ss;
  write_binary(t, ss);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data);
  EXPECT_THROW(read_binary(cut), Error);
}

namespace {

// Mirror io.cpp's little-endian field writers so the error-path tests can
// hand-craft hostile streams with full control over every header field.
template <typename T>
void raw_put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void raw_put_string(std::ostream& os, const std::string& s) {
  raw_put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Valid header for a 1-rank trace up to (but excluding) the per-rank event
/// count, with a chosen magic and version.
void put_header(std::ostream& os, const char magic[4], std::uint32_t version) {
  os.write(magic, 4);
  raw_put<std::uint32_t>(os, version);
  raw_put_string(os, "app");
  raw_put_string(os, "");          // variant
  raw_put_string(os, "cielito");   // machine
  raw_put<std::int32_t>(os, 1);    // nranks
  raw_put<std::int32_t>(os, 1);    // ranks_per_node
  raw_put<std::uint64_t>(os, 7);   // seed
  raw_put<std::uint32_t>(os, 1);   // ncomms (world only)
  raw_put<std::uint32_t>(os, 1);   // world size
  raw_put<Rank>(os, 0);            // world member
}

}  // namespace

TEST(Io, RejectsBadMagic) {
  std::stringstream ss;
  put_header(ss, "HPSX", kTraceFormatVersion);
  raw_put<std::uint64_t>(ss, 0);  // rank 0: no events
  raw_put<std::uint32_t>(ss, 0);  // rank 0: no vlists
  EXPECT_THROW(
      try { read_binary(ss); } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("not a HPST"), std::string::npos);
        throw;
      },
      Error);
}

TEST(Io, RejectsUnsupportedVersion) {
  std::stringstream ss;
  put_header(ss, "HPST", kTraceFormatVersion + 1);
  raw_put<std::uint64_t>(ss, 0);
  raw_put<std::uint32_t>(ss, 0);
  EXPECT_THROW(
      try { read_binary(ss); } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
        throw;
      },
      Error);
}

TEST(Io, RejectsOutOfRangeEventCount) {
  std::stringstream ss;
  put_header(ss, "HPST", kTraceFormatVersion);
  // An event count beyond the 2^32 sanity bound must be rejected before any
  // allocation is attempted (a hostile stream must not drive a huge resize).
  raw_put<std::uint64_t>(ss, (std::uint64_t{1} << 32) + 1);
  EXPECT_THROW(
      try { read_binary(ss); } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("event count out of range"), std::string::npos);
        throw;
      },
      Error);
}

TEST(Io, RejectsTruncatedInEvents) {
  std::stringstream ss;
  put_header(ss, "HPST", kTraceFormatVersion);
  raw_put<std::uint64_t>(ss, 10);  // promises 10 events, delivers none
  EXPECT_THROW(
      try { read_binary(ss); } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated in events"), std::string::npos);
        throw;
      },
      Error);
}

TEST(Io, TextDumpContainsOps) {
  Trace t = valid_pair_trace();
  std::stringstream ss;
  write_text(t, ss);
  const std::string s = ss.str();
  EXPECT_NE(s.find("Send"), std::string::npos);
  EXPECT_NE(s.find("Barrier"), std::string::npos);
}

TEST(Event, OpPredicates) {
  EXPECT_TRUE(is_p2p(OpType::kIsend));
  EXPECT_FALSE(is_p2p(OpType::kBarrier));
  EXPECT_TRUE(is_collective(OpType::kAlltoallv));
  EXPECT_FALSE(is_collective(OpType::kWait));
  EXPECT_TRUE(is_rooted(OpType::kScatter));
  EXPECT_FALSE(is_rooted(OpType::kAllreduce));
  EXPECT_TRUE(is_alltoall_like(OpType::kAlltoall));
}

TEST(TextFormat, RoundTripsStructure) {
  Trace t(meta(3, "textfmt"));
  t.add_comm({0, 2});
  RankBuilder b0(t, 0), b1(t, 1), b2(t, 2);
  b0.compute(1234);
  const auto rq = b0.isend(1, 77, 3, 9);
  b0.wait(rq, 5);
  b1.recv(0, 77, 3, 8);
  const std::uint64_t sizes[2] = {0, 11};
  b0.alltoallv(sizes, 10, 1);
  b2.alltoallv(sizes, 10, 1);
  for (Rank r = 0; r < 3; ++r) {
    RankBuilder b(t, r);
    // Builders share request counters only within an instance; collective
    // lines are fine to add from fresh builders.
  }
  b0.allreduce(64, 22);
  b1.allreduce(64, 22);
  b2.allreduce(64, 22);
  b0.bcast(2, 128, 33);
  b1.bcast(2, 128, 33);
  b2.bcast(2, 128, 33);
  ASSERT_TRUE(validate(t).empty());

  std::stringstream ss;
  write_text_format(t, ss);
  const Trace u = read_text_format(ss);
  EXPECT_EQ(u.meta().app, "textfmt");
  EXPECT_EQ(u.nranks(), 3);
  EXPECT_EQ(u.num_comms(), 2u);
  EXPECT_EQ(u.comm(1), (std::vector<Rank>{0, 2}));
  EXPECT_EQ(u.total_events(), t.total_events());
  EXPECT_TRUE(validate(u).empty());
  // Event-level equality of the first rank.
  const auto& ea = t.rank(0).events;
  const auto& eb = u.rank(0).events;
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].type, eb[i].type) << i;
    EXPECT_EQ(ea[i].bytes, eb[i].bytes) << i;
    EXPECT_EQ(ea[i].duration, eb[i].duration) << i;
  }
}

TEST(TextFormat, ParsesHandWrittenTrace) {
  const char* text = R"(# hand-written
meta app=mini variant=- machine=cielito ranks=2 rpn=4 seed=3
rank 0
  compute dur=500
  send peer=1 bytes=32 tag=7 dur=10   # inline comment
  barrier dur=5
endrank
rank 1
  recv peer=0 bytes=32 tag=7 dur=12
  barrier dur=5
endrank
)";
  std::stringstream ss(text);
  const Trace t = read_text_format(ss);
  EXPECT_EQ(t.nranks(), 2);
  EXPECT_TRUE(validate(t).empty());
  EXPECT_EQ(t.rank(0).events.size(), 3u);
  EXPECT_EQ(t.rank(0).events[1].bytes, 32u);
}

TEST(TextFormat, RejectsMalformedInput) {
  auto parse = [](const char* text) {
    std::stringstream ss(text);
    return read_text_format(ss);
  };
  EXPECT_THROW(parse("rank 0\nendrank\n"), Error);  // no meta
  EXPECT_THROW(parse("meta app=x variant=- machine=m ranks=0\n"), Error);
  EXPECT_THROW(parse("meta app=x variant=- machine=m ranks=2\nrank 5\n"), Error);
  EXPECT_THROW(parse("meta app=x variant=- machine=m ranks=2\ncompute dur=5\n"), Error);
  EXPECT_THROW(
      parse("meta app=x variant=- machine=m ranks=2\nrank 0\nfrobnicate dur=1\n"), Error);
  EXPECT_THROW(
      parse("meta app=x variant=- machine=m ranks=2\nrank 0\nsend peer=9 bytes=b\n"),
      Error);
}

}  // namespace
}  // namespace hps::trace
