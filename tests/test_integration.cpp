// Cross-tool integration tests: the study's validity rests on MFACT and the
// detailed simulators agreeing when there is nothing to disagree about
// (no contention), and diverging in the expected direction when there is.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "core/runner.hpp"
#include "machine/machine.hpp"
#include "mfact/model.hpp"
#include "simmpi/replayer.hpp"
#include "trace/builder.hpp"
#include "trace/validate.hpp"
#include "workloads/generators.hpp"

namespace hps {
namespace {

using core::Scheme;
using trace::RankBuilder;
using trace::Trace;
using trace::TraceMeta;

TraceMeta meta(Rank n, int rpn = 16) {
  TraceMeta m;
  m.app = "xtool";
  m.nranks = n;
  m.ranks_per_node = rpn;
  m.machine = "cielito";
  return m;
}

TEST(CrossTool, PureComputeAgreesExactly) {
  Trace t(meta(8));
  for (Rank r = 0; r < 8; ++r) {
    RankBuilder b(t, r);
    b.compute(100 * kMillisecond + r * kMillisecond);
  }
  const auto o = core::run_all_schemes(t);
  for (const Scheme s : {Scheme::kPacket, Scheme::kFlow, Scheme::kPacketFlow})
    EXPECT_EQ(o.of(s).total_time, o.of(Scheme::kMfact).total_time)
        << core::scheme_name(s);
}

TEST(CrossTool, SingleLargeTransferWithinTenPercent) {
  // One 8 MiB message, no contention: Hockney and the simulators should
  // land within ~10% of each other (protocol details account for the gap).
  Trace t(meta(2, 1));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 8 * MiB, 1, 0);
  b1.recv(0, 8 * MiB, 1, 0);
  const auto o = core::run_all_schemes(t);
  for (const Scheme s : {Scheme::kPacket, Scheme::kFlow, Scheme::kPacketFlow}) {
    const auto d = o.diff_total(s);
    ASSERT_TRUE(d.has_value());
    EXPECT_LT(*d, 0.12) << core::scheme_name(s);
  }
}

TEST(CrossTool, UncontendedHaloWithinTenPercent) {
  // Nearest-neighbor exchanges with generous compute between them: nothing
  // contends, so modeling and simulation should agree closely.
  Trace t(meta(16, 4));
  for (Rank r = 0; r < 16; ++r) {
    RankBuilder b(t, r);
    for (int i = 0; i < 10; ++i) {
      b.compute(5 * kMillisecond);
      const Rank peer = r ^ 1;
      b.irecv(peer, 32 * 1024, 5, 0);
      b.isend(peer, 32 * 1024, 5, 0);
      b.waitall(0);
    }
  }
  trace::validate_or_throw(t);
  const auto o = core::run_all_schemes(t);
  for (const Scheme s : {Scheme::kPacket, Scheme::kFlow, Scheme::kPacketFlow}) {
    const auto d = o.diff_total(s);
    ASSERT_TRUE(d.has_value());
    EXPECT_LT(*d, 0.10) << core::scheme_name(s);
  }
}

TEST(CrossTool, ContentionMakesSimulationSlowerThanModel) {
  // Dense all-to-all traffic: the simulators see fabric/NIC contention that
  // Hockney cannot, so their predicted total should exceed MFACT's.
  Trace t(meta(64, 16));
  for (Rank r = 0; r < 64; ++r) {
    RankBuilder b(t, r);
    b.compute(kMillisecond);
    for (int i = 0; i < 3; ++i) b.alltoall(64 * 1024, 0);
  }
  trace::validate_or_throw(t);
  const auto o = core::run_all_schemes(t);
  for (const Scheme s : {Scheme::kPacket, Scheme::kFlow, Scheme::kPacketFlow}) {
    EXPECT_GT(o.of(s).total_time, o.of(Scheme::kMfact).total_time)
        << core::scheme_name(s);
  }
}

TEST(CrossTool, SimulatorsAgreeWithEachOtherBetterThanWithMeasured) {
  // The three network models are variations of one simulator; their spread
  // should be tighter than their distance to the noisy ground truth.
  workloads::GenParams gp;
  gp.ranks = 32;
  gp.seed = 3;
  gp.iter_factor = 0.3;
  const Trace t = workloads::generate_app("MiniFE", gp);
  const auto o = core::run_all_schemes(t);
  const double pkt = static_cast<double>(o.of(Scheme::kPacket).total_time);
  const double flw = static_cast<double>(o.of(Scheme::kFlow).total_time);
  const double pfl = static_cast<double>(o.of(Scheme::kPacketFlow).total_time);
  const double spread = std::max({pkt, flw, pfl}) / std::min({pkt, flw, pfl}) - 1.0;
  EXPECT_LT(spread, 0.10);
}

TEST(CrossTool, PredictionsUnderestimateMeasured) {
  // The ground-truth synthesizer inflates measured times above the ideal
  // cost, so both tools should come out below measurement (Figs. 3c/4c).
  workloads::GenParams gp;
  gp.ranks = 27;
  gp.seed = 9;
  gp.iter_factor = 0.3;
  const Trace t = workloads::generate_app("LULESH", gp);
  const auto o = core::run_all_schemes(t);
  EXPECT_LT(o.of(Scheme::kMfact).total_time, o.measured_total);
  EXPECT_LT(o.of(Scheme::kPacketFlow).total_time, o.measured_total);
}

TEST(CrossTool, MfactScalesWithConfigCountNotRuns) {
  // Running k configurations concurrently must cost far less than k
  // separate replays — the design point that makes MFACT's sweeps cheap.
  workloads::GenParams gp;
  gp.ranks = 16;
  gp.seed = 4;
  gp.iter_factor = 0.5;
  const Trace t = workloads::generate_app("MG", gp);
  const auto sweep1 = mfact::make_sensitivity_sweep(gbps_to_Bps(10), 2500);

  double wall_k = 0;
  mfact::run_mfact(t, sweep1, {}, &wall_k);
  double wall_1_total = 0;
  for (const auto& cfg : sweep1) {
    double w = 0;
    mfact::run_mfact(t, {cfg}, {}, &w);
    wall_1_total += w;
  }
  EXPECT_LT(wall_k, wall_1_total) << "concurrent sweep slower than separate replays";
}

TEST(CrossTool, RanksPerNodePlacementMatters) {
  // Packing ranks on fewer nodes converts network traffic into local
  // traffic; the simulated halo gets cheaper.
  Trace dense(meta(16, 16));   // one node
  Trace sparse(meta(16, 1));   // sixteen nodes
  for (Trace* t : {&dense, &sparse}) {
    for (Rank r = 0; r < 16; ++r) {
      RankBuilder b(*t, r);
      for (int i = 0; i < 5; ++i) {
        b.compute(10000);
        const Rank peer = r ^ 1;
        b.irecv(peer, 256 * 1024, 5, 0);
        b.isend(peer, 256 * 1024, 5, 0);
        b.waitall(0);
      }
    }
  }
  const machine::MachineInstance mi_dense(machine::cielito(), 16, 16);
  const machine::MachineInstance mi_sparse(machine::cielito(), 16, 1);
  const auto rd = simmpi::replay_trace(dense, mi_dense, simmpi::NetModelKind::kPacketFlow);
  const auto rs = simmpi::replay_trace(sparse, mi_sparse, simmpi::NetModelKind::kPacketFlow);
  EXPECT_LT(rd.total_time, rs.total_time);
}

}  // namespace
}  // namespace hps
