// Unit tests for the common module: units, RNG, descriptive statistics,
// dense linear algebra, and table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include <unordered_map>

#include "common/flat_hash.hpp"
#include "common/interner.hpp"
#include "common/matrix.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "common/stats_util.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace hps {
namespace {

TEST(Units, SecondsRoundTrip) {
  EXPECT_EQ(seconds_to_time(1.0), kSecond);
  EXPECT_DOUBLE_EQ(time_to_seconds(kSecond), 1.0);
  EXPECT_EQ(seconds_to_time(0.5), 500 * kMillisecond);
  EXPECT_EQ(seconds_to_time(1e-9), 1);
}

TEST(Units, BandwidthConversion) {
  EXPECT_DOUBLE_EQ(gbps_to_Bps(8.0), 1e9);
  EXPECT_DOUBLE_EQ(Bps_to_gbps(1e9), 8.0);
  EXPECT_DOUBLE_EQ(Bps_to_gbps(gbps_to_Bps(35.0)), 35.0);
}

TEST(Units, TransferTimeRoundsUp) {
  // 1 byte at 1 GB/s = 1 ns exactly.
  EXPECT_EQ(transfer_time(1, 1e9), 1);
  // A fraction of a nanosecond still costs one.
  EXPECT_EQ(transfer_time(1, 2e9), 1);
  EXPECT_EQ(transfer_time(0, 1e9), 0);
  // Large transfer: 1 MiB at 1 GiB/s is ~1 ms.
  const SimTime t = transfer_time(MiB, 1024.0 * MiB);
  EXPECT_NEAR(static_cast<double>(t), 1e9 / 1024.0, 2.0);
}

TEST(Units, TransferTimeZeroBandwidthIsHuge) {
  EXPECT_GT(transfer_time(1, 0.0), kSecond * 1000000LL);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  Rng a2(42);
  std::uint64_t first = a2();
  Rng c2(43);
  EXPECT_NE(first, c2());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU64InRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.uniform_u64(17), 17u);
}

TEST(Rng, UniformU64CoversRange) {
  Rng r(10);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[r.uniform_u64(8)];
  for (int c : seen) EXPECT_GT(c, 700);  // ~1000 expected per bucket
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0, ss = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    ss += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(ss / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedian) {
  Rng r(12);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(r.lognormal_median(5.0, 0.5));
  EXPECT_NEAR(median(xs), 5.0, 0.15);
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng r(13);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> count(3, 0);
  for (int i = 0; i < 40000; ++i) ++count[r.weighted_pick(w)];
  EXPECT_EQ(count[1], 0);
  EXPECT_NEAR(static_cast<double>(count[2]) / count[0], 3.0, 0.3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(14);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  r.shuffle(v);
  EXPECT_NE(v, copy);  // overwhelmingly likely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, MixSeedDiffers) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
  EXPECT_NE(mix_seed(1, 2), mix_seed(1, 3));
}

TEST(StatsUtil, MeanAndStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(StatsUtil, MedianAndPercentile) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{5.0}, 50), 5.0);
}

TEST(StatsUtil, TrimmedMeanDiscardsTails) {
  std::vector<double> xs(100, 1.0);
  xs[0] = -1000;
  xs[1] = 1000;
  // 2% trim removes exactly the two outliers.
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.02), 1.0);
  // No trim keeps them.
  EXPECT_NE(trimmed_mean(xs, 0.0), 1.0);
}

TEST(StatsUtil, CdfAt) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(cdf_at(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(xs, 3.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf_at(xs, 10.0), 1.0);
}

TEST(StatsUtil, HistogramBuckets) {
  const std::vector<double> xs = {0.5, 1.5, 1.6, 2.5, 99.0};
  const std::vector<double> edges = {0, 1, 2, 3};
  const auto h = histogram(xs, edges);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0].count, 1u);
  EXPECT_EQ(h[1].count, 2u);
  EXPECT_EQ(h[2].count, 2u);  // 2.5 plus the clamped 99.0
}

TEST(StatsUtil, PearsonCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
  const std::vector<double> c = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, c), 0.0);
}

TEST(StatsUtil, Summarize) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
}

TEST(Matrix, MultiplyIdentity) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Matrix r = Matrix::identity(2).multiply(a);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(r(i, j), a(i, j));
}

TEST(Matrix, TransposeShape) {
  Matrix a(2, 3, 1.0);
  a(0, 2) = 7;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(Matrix, CholeskySolveSpd) {
  // A = [[4,2],[2,3]], b = [6,5] -> x = [1,1].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  const auto x = cholesky_solve(a, std::vector<double>{6, 5});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3 and -1
  EXPECT_THROW(cholesky_solve(a, std::vector<double>{1, 1}), Error);
}

TEST(Matrix, LuSolveGeneral) {
  Matrix a(3, 3);
  const double vals[9] = {0, 2, 1, 1, -2, -3, -1, 1, 2};
  for (int i = 0; i < 9; ++i) a(static_cast<std::size_t>(i / 3),
                                static_cast<std::size_t>(i % 3)) = vals[i];
  const auto x = lu_solve(a, std::vector<double>{-8, 0, 3});
  // Verify by substitution.
  const auto back = a.multiply_vec(x);
  EXPECT_NEAR(back[0], -8, 1e-9);
  EXPECT_NEAR(back[1], 0, 1e-9);
  EXPECT_NEAR(back[2], 3, 1e-9);
}

TEST(Matrix, LuSolveRejectsSingular) {
  Matrix a(2, 2, 1.0);  // rank 1
  EXPECT_THROW(lu_solve(a, std::vector<double>{1, 1}), Error);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_percent(0.932), "93.2%");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_si_bytes(1536), "1.5 KiB");
  EXPECT_EQ(fmt_time_s(1.5, 1), "1.5 s");
}

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<std::uint64_t, int, Mix64Hash> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
  m[5] = 50;
  m[6] = 60;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(*m.find(5), 50);
  EXPECT_EQ(m.at(6), 60);
  EXPECT_TRUE(m.erase(5));
  EXPECT_FALSE(m.erase(5));
  EXPECT_EQ(m.find(5), nullptr);
  EXPECT_EQ(m.size(), 1u);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(6), nullptr);
}

TEST(FlatMap, DifferentialAgainstUnorderedMap) {
  // Randomized insert/overwrite/erase/lookup churn: the backward-shift
  // deletion must keep every lookup agreeing with std::unordered_map. Keys
  // are drawn from a small range so chains collide and shift often.
  FlatMap<std::uint64_t, std::uint64_t, Mix64Hash> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.uniform_u64(512);
    switch (rng.uniform_u64(4)) {
      case 0:
      case 1: {
        const std::uint64_t val = rng.uniform_u64(1 << 30);
        m[key] = val;
        ref[key] = val;
        break;
      }
      case 2: {
        const bool a = m.erase(key);
        const bool b = ref.erase(key) > 0;
        ASSERT_EQ(a, b) << "erase divergence on key " << key;
        break;
      }
      default: {
        const std::uint64_t* v = m.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(v != nullptr, it != ref.end()) << "find divergence on key " << key;
        if (v != nullptr) {
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    const std::uint64_t* got = m.find(k);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, v);
  }
}

TEST(StringInterner, DenseStableIds) {
  StringInterner in;
  const std::uint32_t a = in.id("alpha");
  const std::uint32_t b = in.id("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.id("alpha"), a);  // repeat lookups are stable
  EXPECT_EQ(in.str(a), "alpha");
  EXPECT_EQ(in.str(b), "beta");
  EXPECT_EQ(in.size(), 2u);
  const std::string& canon = in.intern("alpha");
  EXPECT_EQ(&canon, &in.intern("alpha"));  // one canonical copy
  // References stay valid across growth. (Concatenation built piecewise to
  // dodge GCC 12's std::string operator+ -Wrestrict false positive,
  // PR105651.)
  const std::string& first = in.str(a);
  for (int i = 0; i < 1000; ++i) {
    std::string key = "k";
    key += std::to_string(i);
    in.id(key);
  }
  EXPECT_EQ(first, "alpha");
}

TEST(IndexPool, RecyclesSlotsLifo) {
  IndexPool<int> pool;
  const std::uint32_t a = pool.alloc();
  const std::uint32_t b = pool.alloc();
  pool[a] = 1;
  pool[b] = 2;
  EXPECT_EQ(pool.live(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.live(), 1u);
  const std::uint32_t c = pool.alloc();
  EXPECT_EQ(c, a);  // LIFO free list reuses the hottest slot
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(pool[b], 2);
  EXPECT_GE(pool.capacity(), 2u);
}

}  // namespace
}  // namespace hps
