// Differential and property harness for the incremental max-min solver
// (simnet/maxmin/system.hpp).
//
// The central check is *exact* (bitwise) equality between the incremental
// solver — which re-rates only the dirty component and reuses rates across
// solves — and a from-scratch brute-force water-filling oracle that re-rates
// the whole system every time. Exactness is a sound assertion because the
// test draws capacities and bounds from continuous distributions: candidate
// bottleneck shares are then pairwise distinct (ties are measure-zero), the
// water-filling freeze order is determined by share *values* alone, and both
// implementations perform the identical sequence of IEEE operations. Real
// workloads do produce exact ties (symmetric topologies); tie-break
// determinism is covered separately by the replay/golden tests, which pin
// the solver against its own history rather than an oracle.
//
// Property tests cover the invariants that hold regardless of ties: no
// constraint over capacity, every variable capped by its bound or crossing a
// saturated constraint, exact scale-equivariance under power-of-two
// rescaling, and component-bounded incremental work.

#include "simnet/maxmin/system.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace {

using hps::simnet::maxmin::ConsId;
using hps::simnet::maxmin::System;
using hps::simnet::maxmin::VarId;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Test-side mirror of a System: remembers every live variable's bound and
/// route plus each constraint's member list in the same insertion order the
/// solver keeps, and can water-fill the whole thing from scratch.
class Shadow {
 public:
  ConsId add_constraint(System& sys, double cap) {
    const ConsId c = sys.add_constraint(cap);
    cap_.push_back(cap);
    members_.emplace_back();
    return c;
  }

  void set_capacity(System& sys, ConsId c, double cap) {
    sys.set_capacity(c, cap);
    cap_[c] = cap;
  }

  VarId add_flow(System& sys, double bound, const std::vector<ConsId>& route) {
    const VarId v = sys.add_variable(bound);
    for (const ConsId c : route) sys.attach(v, c);
    sys.admit(v);
    if (vars_.size() <= v) vars_.resize(v + 1);
    vars_[v] = {bound, route, true};
    for (const ConsId c : route) members_[c].push_back(v);
    live_.push_back(v);
    return v;
  }

  void retire(System& sys, VarId v) {
    sys.retire(v);
    vars_[v].live = false;
    for (const ConsId c : vars_[v].route) std::erase(members_[c], v);
    std::erase(live_, v);
  }

  void set_bound(System& sys, VarId v, double bound) {
    sys.set_bound(v, bound);
    vars_[v].bound = bound;
  }

  const std::vector<VarId>& live() const { return live_; }
  std::size_t num_cons() const { return cap_.size(); }
  double capacity(ConsId c) const { return cap_[c]; }
  const std::vector<VarId>& members(ConsId c) const { return members_[c]; }
  double bound_of(VarId v) const { return vars_[v].bound; }
  const std::vector<ConsId>& route_of(VarId v) const { return vars_[v].route; }

  /// From-scratch progressive water-filling of the full system. Freezes one
  /// globally minimal candidate at a time (scan order: constraints by id,
  /// then bounds by id); with distinct shares this performs bitwise the same
  /// arithmetic as the solver's heap-driven fill. Returns rates indexed by
  /// VarId; dead slots hold NaN.
  std::vector<double> water_fill() const {
    std::vector<double> rate(vars_.size(), std::numeric_limits<double>::quiet_NaN());
    std::vector<double> residual = cap_;
    std::vector<int> unfrozen(cap_.size(), 0);
    std::vector<std::uint8_t> frozen(vars_.size(), 0);
    std::size_t remaining = live_.size();
    for (const ConsId c : cons_ids()) unfrozen[c] = static_cast<int>(members_[c].size());

    auto freeze_var = [&](VarId v, double r) {
      rate[v] = r;
      frozen[v] = 1;
      for (const ConsId c : vars_[v].route) {
        residual[c] -= r;
        if (residual[c] < 0) residual[c] = 0;
        --unfrozen[c];
      }
      --remaining;
    };

    while (remaining > 0) {
      double best = std::numeric_limits<double>::infinity();
      bool best_is_cons = false;
      std::uint32_t best_id = 0;
      for (const ConsId c : cons_ids()) {
        if (unfrozen[c] <= 0) continue;
        const double share = residual[c] / static_cast<double>(unfrozen[c]);
        if (share < best) {
          best = share;
          best_is_cons = true;
          best_id = c;
        }
      }
      for (const VarId v : live_) {
        if (frozen[v] || vars_[v].bound <= 0) continue;
        if (vars_[v].bound < best) {
          best = vars_[v].bound;
          best_is_cons = false;
          best_id = v;
        }
      }
      if (!std::isfinite(best)) {
        ADD_FAILURE() << "oracle ran out of candidates";
        return rate;
      }
      if (best_is_cons) {
        const double r = std::max(best, 0.0);
        // Copy: freeze_var edits members_[best_id] ordering never, but the
        // loop must not be invalidated by anything; iterate a snapshot.
        const std::vector<VarId> group = members_[best_id];
        for (const VarId v : group)
          if (!frozen[v]) freeze_var(v, r);
      } else {
        freeze_var(best_id, std::max(vars_[best_id].bound, 0.0));
      }
    }
    return rate;
  }

 private:
  struct Var {
    double bound = 0;
    std::vector<ConsId> route;
    bool live = false;
  };

  std::vector<ConsId> cons_ids() const {
    std::vector<ConsId> ids(cap_.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<ConsId>(i);
    return ids;
  }

  std::vector<double> cap_;
  std::vector<std::vector<VarId>> members_;  // insertion order, like the solver
  std::vector<Var> vars_;
  std::vector<VarId> live_;
};

void expect_rates_match_oracle(const System& sys, const Shadow& sh, const char* where) {
  const std::vector<double> want = sh.water_fill();
  for (const VarId v : sh.live()) {
    ASSERT_EQ(bits(sys.rate(v)), bits(want[v]))
        << where << ": var " << v << " solver=" << sys.rate(v) << " oracle=" << want[v];
  }
}

/// Invariants that hold with or without ties. `tol` absorbs the one-ULP
/// slack of summing member rates in a different order than the fill drained
/// them.
void expect_feasible_and_bottlenecked(const System& sys, const Shadow& sh) {
  constexpr double kTol = 1e-9;
  std::vector<double> load(sh.num_cons(), 0.0);
  for (const VarId v : sh.live())
    for (const ConsId c : sh.route_of(v)) load[c] += sys.rate(v);
  for (ConsId c = 0; c < sh.num_cons(); ++c) {
    ASSERT_LE(load[c], sh.capacity(c) + kTol * std::max(1.0, sh.capacity(c)))
        << "constraint " << c << " over capacity";
  }
  for (const VarId v : sh.live()) {
    const double r = sys.rate(v);
    ASSERT_GE(r, 0.0);
    const double b = sh.bound_of(v);
    if (b > 0 && r == b) continue;  // at its private cap
    bool saturated = false;
    for (const ConsId c : sh.route_of(v)) {
      if (load[c] >= sh.capacity(c) * (1.0 - kTol) - kTol) {
        saturated = true;
        break;
      }
    }
    ASSERT_TRUE(saturated) << "var " << v << " rate " << r
                           << " is below its bound but crosses no saturated constraint "
                              "(not max-min fair)";
  }
}

// ---------------------------------------------------------------------------
// Hand-computed fixtures.
// ---------------------------------------------------------------------------

TEST(MaxMinSystem, SingleLinkSplitsEvenly) {
  System sys;
  Shadow sh;
  const ConsId l = sh.add_constraint(sys, 12.0);
  for (int i = 0; i < 4; ++i) sh.add_flow(sys, 0.0, {l});
  sys.solve();
  for (const VarId v : sh.live()) EXPECT_EQ(sys.rate(v), 3.0);
}

TEST(MaxMinSystem, ClassicTandemBottleneck) {
  // f0 on L0 (cap 1), f1 on L1 (cap 2), f2 on both. L0 is the bottleneck:
  // f0 = f2 = 0.5, and f1 takes L1's residual 1.5.
  System sys;
  Shadow sh;
  const ConsId l0 = sh.add_constraint(sys, 1.0);
  const ConsId l1 = sh.add_constraint(sys, 2.0);
  const VarId f0 = sh.add_flow(sys, 0.0, {l0});
  const VarId f1 = sh.add_flow(sys, 0.0, {l1});
  const VarId f2 = sh.add_flow(sys, 0.0, {l0, l1});
  sys.solve();
  EXPECT_EQ(sys.rate(f0), 0.5);
  EXPECT_EQ(sys.rate(f2), 0.5);
  EXPECT_EQ(sys.rate(f1), 1.5);
  expect_rates_match_oracle(sys, sh, "tandem");
}

TEST(MaxMinSystem, BoundActsAsPrivateConstraint) {
  // Two flows on a cap-10 link; one is bounded at 2, so the other gets 8.
  System sys;
  Shadow sh;
  const ConsId l = sh.add_constraint(sys, 10.0);
  const VarId slow = sh.add_flow(sys, 2.0, {l});
  const VarId fast = sh.add_flow(sys, 0.0, {l});
  sys.solve();
  EXPECT_EQ(sys.rate(slow), 2.0);
  EXPECT_EQ(sys.rate(fast), 8.0);
  expect_rates_match_oracle(sys, sh, "bound");
}

TEST(MaxMinSystem, ZeroCapacityStarves) {
  System sys;
  Shadow sh;
  const ConsId dead = sh.add_constraint(sys, 0.0);
  const ConsId ok = sh.add_constraint(sys, 5.0);
  const VarId starved = sh.add_flow(sys, 0.0, {dead, ok});
  const VarId happy = sh.add_flow(sys, 0.0, {ok});
  sys.solve();
  EXPECT_EQ(sys.rate(starved), 0.0);
  EXPECT_EQ(sys.rate(happy), 5.0);
  expect_rates_match_oracle(sys, sh, "zero-cap");
}

TEST(MaxMinSystem, BoundOnlyVariableRatesAtBound) {
  System sys;
  Shadow sh;
  const VarId v = sh.add_flow(sys, 3.25, {});
  sys.solve();
  EXPECT_EQ(sys.rate(v), 3.25);
  expect_rates_match_oracle(sys, sh, "bound-only");
}

TEST(MaxMinSystem, VarIdsRecycleLifo) {
  // The flow model relies on slot == VarId lockstep with its LIFO IndexPool.
  System sys;
  const ConsId l = sys.add_constraint(1.0);
  auto mk = [&] {
    const VarId v = sys.add_variable(0.0);
    sys.attach(v, l);
    sys.admit(v);
    return v;
  };
  const VarId a = mk();
  const VarId b = mk();
  const VarId c = mk();
  sys.retire(b);
  sys.retire(a);
  EXPECT_EQ(mk(), a);  // last released, first reused
  EXPECT_EQ(mk(), b);
  EXPECT_EQ(mk(), c + 1);
  sys.solve();
}

// ---------------------------------------------------------------------------
// Randomized differential churn against the oracle.
// ---------------------------------------------------------------------------

struct ChurnParams {
  std::uint32_t seed = 1;
  int num_links = 24;
  int clusters = 3;  // routes stay inside one cluster: disjoint components
  int steps = 4000;
  int max_live = 80;
  double cross_cluster_prob = 0.05;  // occasionally bridge components
};

void run_churn(const ChurnParams& p) {
  std::mt19937 rng(p.seed);
  std::uniform_real_distribution<double> cap_dist(0.25, 8.0);
  std::uniform_real_distribution<double> bound_dist(0.05, 6.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  System sys;
  Shadow sh;
  for (int l = 0; l < p.num_links; ++l) sh.add_constraint(sys, cap_dist(rng));

  const int per_cluster = p.num_links / p.clusters;
  auto random_route = [&] {
    std::vector<ConsId> route;
    const int cluster = static_cast<int>(rng() % static_cast<std::uint32_t>(p.clusters));
    const int len = 1 + static_cast<int>(rng() % 4u);
    for (int i = 0; i < len; ++i) {
      int c;
      if (coin(rng) < p.cross_cluster_prob) {
        c = static_cast<int>(rng() % static_cast<std::uint32_t>(p.num_links));
      } else {
        c = cluster * per_cluster + static_cast<int>(rng() % static_cast<std::uint32_t>(per_cluster));
      }
      if (std::find(route.begin(), route.end(), static_cast<ConsId>(c)) == route.end())
        route.push_back(static_cast<ConsId>(c));
    }
    return route;
  };

  int until_solve = 1 + static_cast<int>(rng() % 8u);
  for (int step = 0; step < p.steps; ++step) {
    const double u = coin(rng);
    const std::size_t nlive = sh.live().size();
    if (nlive == 0 || (u < 0.45 && nlive < static_cast<std::size_t>(p.max_live))) {
      // ~20% of flows are unbounded; the rest carry a continuous pacing cap.
      const double bound = coin(rng) < 0.2 ? 0.0 : bound_dist(rng);
      sh.add_flow(sys, bound, random_route());
    } else if (u < 0.70 && nlive > 0) {
      sh.retire(sys, sh.live()[rng() % nlive]);
    } else if (u < 0.85) {
      const ConsId c = static_cast<ConsId>(rng() % static_cast<std::uint32_t>(p.num_links));
      // Occasionally take a link down to zero capacity entirely.
      sh.set_capacity(sys, c, coin(rng) < 0.1 ? 0.0 : cap_dist(rng));
    } else if (nlive > 0) {
      const VarId v = sh.live()[rng() % nlive];
      if (!sh.route_of(v).empty())
        sh.set_bound(sys, v, coin(rng) < 0.25 ? 0.0 : bound_dist(rng));
    }

    if (--until_solve == 0) {
      until_solve = 1 + static_cast<int>(rng() % 8u);
      sys.solve();
      ASSERT_NO_FATAL_FAILURE(expect_rates_match_oracle(sys, sh, "churn"));
    }
  }
  sys.solve();
  ASSERT_NO_FATAL_FAILURE(expect_rates_match_oracle(sys, sh, "final"));
  ASSERT_NO_FATAL_FAILURE(expect_feasible_and_bottlenecked(sys, sh));
}

TEST(MaxMinDifferential, RandomChurnMatchesOracleSeed1) {
  run_churn({.seed = 1});
}

TEST(MaxMinDifferential, RandomChurnMatchesOracleSeed2) {
  run_churn({.seed = 2, .num_links = 9, .clusters = 1, .max_live = 40});
}

TEST(MaxMinDifferential, RandomChurnMatchesOracleSeed3) {
  // Wide, sparse, heavily clustered: exercises multi-component locality.
  run_churn({.seed = 3, .num_links = 48, .clusters = 6, .max_live = 120,
             .cross_cluster_prob = 0.0});
}

// ---------------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------------

TEST(MaxMinProperty, FeasibleAndBottleneckJustifiedUnderChurn) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> cap_dist(0.25, 8.0);
  std::uniform_real_distribution<double> bound_dist(0.05, 6.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  System sys;
  Shadow sh;
  const int num_links = 16;
  for (int l = 0; l < num_links; ++l) sh.add_constraint(sys, cap_dist(rng));
  for (int step = 0; step < 1500; ++step) {
    const std::size_t nlive = sh.live().size();
    if (nlive == 0 || (coin(rng) < 0.55 && nlive < 60)) {
      std::vector<ConsId> route;
      const int len = 1 + static_cast<int>(rng() % 3u);
      for (int i = 0; i < len; ++i) {
        const auto c = static_cast<ConsId>(rng() % num_links);
        if (std::find(route.begin(), route.end(), c) == route.end()) route.push_back(c);
      }
      sh.add_flow(sys, coin(rng) < 0.3 ? bound_dist(rng) : 0.0, route);
    } else {
      sh.retire(sys, sh.live()[rng() % nlive]);
    }
    if (step % 5 == 0) {
      sys.solve();
      ASSERT_NO_FATAL_FAILURE(expect_feasible_and_bottlenecked(sys, sh));
    }
  }
}

TEST(MaxMinProperty, ScaleInvarianceUnderPowerOfTwoRescale) {
  // Scaling every capacity and bound by 2^k multiplies every rate by exactly
  // 2^k: the fill's divisions and subtractions all commute with a power-of-
  // two scale, and share ordering is unchanged. Run the same churn script on
  // a unit system and a scaled twin and compare bitwise.
  for (const int k : {8, -8, 30}) {
    const double scale = std::ldexp(1.0, k);
    std::mt19937 rng_a(11), rng_b(11);
    System sys_a, sys_b;
    Shadow sh_a, sh_b;

    auto script = [&](System& sys, Shadow& sh, std::mt19937& rng, double s) {
      std::uniform_real_distribution<double> cap_dist(0.25, 8.0);
      std::uniform_real_distribution<double> bound_dist(0.05, 6.0);
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      const int num_links = 12;
      for (int l = 0; l < num_links; ++l) sh.add_constraint(sys, cap_dist(rng) * s);
      for (int step = 0; step < 600; ++step) {
        const std::size_t nlive = sh.live().size();
        if (nlive == 0 || (coin(rng) < 0.5 && nlive < 50)) {
          std::vector<ConsId> route;
          const int len = 1 + static_cast<int>(rng() % 3u);
          for (int i = 0; i < len; ++i) {
            const auto c = static_cast<ConsId>(rng() % num_links);
            if (std::find(route.begin(), route.end(), c) == route.end()) route.push_back(c);
          }
          const double b = coin(rng) < 0.3 ? bound_dist(rng) * s : 0.0;
          sh.add_flow(sys, b, route);
        } else {
          sh.retire(sys, sh.live()[rng() % nlive]);
        }
        if (step % 7 == 0) sys.solve();
      }
      sys.solve();
    };

    script(sys_a, sh_a, rng_a, 1.0);
    script(sys_b, sh_b, rng_b, scale);
    ASSERT_EQ(sh_a.live().size(), sh_b.live().size());
    for (std::size_t i = 0; i < sh_a.live().size(); ++i) {
      const VarId va = sh_a.live()[i];
      const VarId vb = sh_b.live()[i];
      ASSERT_EQ(bits(sys_b.rate(vb)), bits(sys_a.rate(va) * scale))
          << "k=" << k << " var " << va;
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental locality: work and collection are bounded by the dirty
// component (the ripple_iterations contract the flow model's telemetry
// re-exports).
// ---------------------------------------------------------------------------

TEST(MaxMinSystem, SolveTouchesOnlyTheDirtyComponent) {
  System sys;
  Shadow sh;
  // Two disjoint 8-link clusters, flows strictly inside their cluster.
  const int num_links = 16;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> cap_dist(0.5, 4.0);
  for (int l = 0; l < num_links; ++l) sh.add_constraint(sys, cap_dist(rng));
  auto route_in = [&](int cluster) {
    std::vector<ConsId> route;
    const int len = 1 + static_cast<int>(rng() % 3u);
    for (int i = 0; i < len; ++i) {
      const auto c = static_cast<ConsId>(cluster * 8 + static_cast<int>(rng() % 8u));
      if (std::find(route.begin(), route.end(), c) == route.end()) route.push_back(c);
    }
    return route;
  };
  std::vector<VarId> left, right;
  for (int i = 0; i < 10; ++i) left.push_back(sh.add_flow(sys, 0.0, route_in(0)));
  for (int i = 0; i < 10; ++i) right.push_back(sh.add_flow(sys, 0.0, route_in(1)));
  sys.solve();
  EXPECT_LE(sys.touched_constraints(), static_cast<std::uint64_t>(num_links));

  // Churn only the left cluster: the right cluster's rates must stand
  // bitwise, the touched-constraint count must stay within the left cluster,
  // and collected() must name only left-cluster flows.
  std::vector<double> right_before;
  for (const VarId v : right) right_before.push_back(sys.rate(v));
  sh.retire(sys, left[3]);
  sh.add_flow(sys, 0.0, route_in(0));
  sys.solve();
  EXPECT_GT(sys.touched_constraints(), 0u);
  EXPECT_LE(sys.touched_constraints(), 8u) << "solve escaped the dirty component";
  for (const VarId v : sys.collected())
    EXPECT_LT(v, 20u);  // all left-cluster slots (right flows came later)
  for (std::size_t i = 0; i < right.size(); ++i)
    EXPECT_EQ(bits(sys.rate(right[i])), bits(right_before[i]));
  expect_rates_match_oracle(sys, sh, "two-cluster");

  // Nothing dirty: solve is a no-op and reports zero touched constraints.
  const std::uint64_t solves_before = sys.solves();
  sys.solve();
  EXPECT_EQ(sys.touched_constraints(), 0u);
  EXPECT_EQ(sys.collected().size(), 0u);
  EXPECT_EQ(sys.solves(), solves_before);
}

TEST(MaxMinSystem, CollectedReportsOldRates) {
  System sys;
  const ConsId l = sys.add_constraint(6.0);
  const VarId a = sys.add_variable(0.0);
  sys.attach(a, l);
  sys.admit(a);
  sys.solve();
  EXPECT_EQ(sys.rate(a), 6.0);

  const VarId b = sys.add_variable(0.0);
  sys.attach(b, l);
  sys.admit(b);
  sys.solve();
  EXPECT_EQ(sys.rate(a), 3.0);
  EXPECT_EQ(sys.rate(b), 3.0);
  // Both were re-rated; a's previous rate is reported for resched filtering.
  ASSERT_EQ(sys.collected().size(), 2u);
  for (std::size_t i = 0; i < sys.collected().size(); ++i) {
    if (sys.collected()[i] == a) {
      EXPECT_EQ(sys.old_rates()[i], 6.0);
    }
    if (sys.collected()[i] == b) {
      EXPECT_EQ(sys.old_rates()[i], 0.0);
    }
  }
}

}  // namespace
