// Unit and property tests for the topology module: route validity,
// determinism, symmetry of hop counts, and sizing helpers. Parameterized
// sweeps run every topology through the same invariants.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "topo/topology.hpp"

namespace hps::topo {
namespace {

TEST(Torus, NodeAndLinkCounts) {
  Torus3D t(4, 4, 4);
  EXPECT_EQ(t.num_nodes(), 64);
  EXPECT_EQ(t.num_links(), 64 * 6);
}

TEST(Torus, SelfRouteIsEmpty) {
  Torus3D t(4, 4, 4);
  std::vector<LinkId> links;
  t.route(7, 7, links);
  EXPECT_TRUE(links.empty());
}

TEST(Torus, NeighborRouteIsOneHop) {
  Torus3D t(4, 4, 4);
  std::vector<LinkId> links;
  t.route(0, 1, links);
  EXPECT_EQ(links.size(), 1u);
}

TEST(Torus, WrapAroundIsShort) {
  Torus3D t(8, 1, 1);
  std::vector<LinkId> links;
  t.route(0, 7, links);  // 0 -> 7 wraps backwards in one hop
  EXPECT_EQ(links.size(), 1u);
}

TEST(Torus, DiameterBound) {
  Torus3D t(4, 4, 4);
  for (NodeId a = 0; a < 64; a += 7)
    for (NodeId b = 0; b < 64; b += 5)
      EXPECT_LE(t.hop_count(a, b), 2 + 2 + 2);  // nx/2 per dimension
}

TEST(Torus, HopCountSymmetric) {
  Torus3D t(3, 4, 5);
  for (NodeId a = 0; a < t.num_nodes(); a += 11)
    for (NodeId b = 0; b < t.num_nodes(); b += 7)
      EXPECT_EQ(t.hop_count(a, b), t.hop_count(b, a));
}

TEST(Dragonfly, CountsMatchGeometry) {
  Dragonfly d(5, 4, 2, 1);
  EXPECT_EQ(d.num_nodes(), 5 * 4 * 2);
}

TEST(Dragonfly, RejectsTooFewGlobalPorts) {
  // 10 groups need 9 global ports per group, but 2 routers x 2 ports = 4.
  EXPECT_DEATH(Dragonfly(10, 2, 2, 2), "global ports");
}

TEST(Dragonfly, IntraRouterRoute) {
  Dragonfly d(3, 4, 2, 1);
  std::vector<LinkId> links;
  d.route(0, 1, links);  // same router: terminal up + terminal down
  EXPECT_EQ(links.size(), 2u);
}

TEST(Dragonfly, IntraGroupRoute) {
  Dragonfly d(3, 4, 2, 1);
  std::vector<LinkId> links;
  d.route(0, 2, links);  // router 0 -> router 1 within group 0
  EXPECT_EQ(links.size(), 3u);  // up, local, down
}

TEST(Dragonfly, InterGroupMinimalRouteLength) {
  Dragonfly d(5, 4, 2, 1);
  std::vector<LinkId> links;
  // Longest minimal path: up, local, global, local, down = 5 links.
  for (NodeId a = 0; a < d.num_nodes(); a += 3)
    for (NodeId b = 0; b < d.num_nodes(); b += 5) {
      if (a == b) continue;
      d.route(a, b, links);
      EXPECT_GE(links.size(), 2u);
      EXPECT_LE(links.size(), 5u);
    }
}

TEST(Dragonfly, ValiantNeverExceedsTwoGlobalHops) {
  Dragonfly d(5, 4, 2, 1, /*valiant=*/true);
  std::vector<LinkId> links;
  for (std::uint64_t salt = 0; salt < 20; ++salt) {
    d.route(0, d.num_nodes() - 1, links, salt);
    EXPECT_LE(links.size(), 8u);  // up + (l g)x2 + l + down
  }
}

TEST(Dragonfly, SpareGlobalPortsBecomeParallelLinks) {
  // Two groups with 8 routers x 1 port each: all 8 ports should be usable as
  // parallel links between the pair, not just one (the Edison-at-64-nodes
  // bottleneck regression).
  Dragonfly d(2, 8, 2, 1);
  std::set<LinkId> globals_used;
  std::vector<LinkId> links;
  const LinkId first_global = 2 * d.num_nodes() + 2 * 8 * 8;
  for (std::uint64_t salt = 0; salt < 64; ++salt) {
    d.route(0, d.num_nodes() - 1, links, salt);
    for (const LinkId l : links)
      if (l >= first_global) globals_used.insert(l);
  }
  EXPECT_GE(globals_used.size(), 4u) << "parallel global links unused";
}

TEST(FatTree, CountsMatchGeometry) {
  FatTree f(4);
  EXPECT_EQ(f.num_nodes(), 16);
}

TEST(FatTree, SameEdgeRoute) {
  FatTree f(4);
  std::vector<LinkId> links;
  f.route(0, 1, links);  // same edge switch
  EXPECT_EQ(links.size(), 2u);
}

TEST(FatTree, SamePodRoute) {
  FatTree f(4);
  std::vector<LinkId> links;
  f.route(0, 2, links);  // different edge, same pod: up-agg-down
  EXPECT_EQ(links.size(), 4u);
}

TEST(FatTree, CrossPodRoute) {
  FatTree f(4);
  std::vector<LinkId> links;
  f.route(0, 15, links);
  EXPECT_EQ(links.size(), 6u);  // node-edge-agg-core-agg-edge-node
}

TEST(FatTree, RequiresEvenK) { EXPECT_DEATH(FatTree(3), "k"); }

// --- Parameterized invariants over all topologies -------------------------

struct TopoCase {
  std::string label;
  std::unique_ptr<Topology> (*make)();
};

class TopologyInvariants : public ::testing::TestWithParam<TopoCase> {};

TEST_P(TopologyInvariants, RoutesUseValidLinksAndAreDeterministic) {
  const auto topo = GetParam().make();
  const NodeId n = topo->num_nodes();
  std::vector<LinkId> links, links2;
  for (NodeId a = 0; a < n; a += std::max(1, n / 13))
    for (NodeId b = 0; b < n; b += std::max(1, n / 11)) {
      topo->route(a, b, links, 3);
      topo->route(a, b, links2, 3);
      EXPECT_EQ(links, links2) << "route must be deterministic for a salt";
      if (a == b) {
        EXPECT_TRUE(links.empty());
        continue;
      }
      EXPECT_FALSE(links.empty());
      std::set<LinkId> seen;
      for (const LinkId l : links) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, topo->num_links());
        EXPECT_TRUE(seen.insert(l).second) << "route revisits a link (loop)";
      }
    }
}

TEST_P(TopologyInvariants, AverageHopsPositive) {
  const auto topo = GetParam().make();
  if (topo->num_nodes() < 2) GTEST_SKIP();
  EXPECT_GT(topo->average_hops(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologyInvariants,
    ::testing::Values(
        TopoCase{"torus_443",
                 [] { return std::unique_ptr<Topology>(std::make_unique<Torus3D>(4, 4, 3)); }},
        TopoCase{"torus_811",
                 [] { return std::unique_ptr<Topology>(std::make_unique<Torus3D>(8, 1, 1)); }},
        TopoCase{"dragonfly",
                 [] {
                   return std::unique_ptr<Topology>(std::make_unique<Dragonfly>(5, 4, 2, 1));
                 }},
        TopoCase{"dragonfly_valiant",
                 [] {
                   return std::unique_ptr<Topology>(
                       std::make_unique<Dragonfly>(5, 4, 2, 1, true));
                 }},
        TopoCase{"fattree4",
                 [] { return std::unique_ptr<Topology>(std::make_unique<FatTree>(4)); }},
        TopoCase{"fattree8",
                 [] { return std::unique_ptr<Topology>(std::make_unique<FatTree>(8)); }}),
    [](const ::testing::TestParamInfo<TopoCase>& info) { return info.param.label; });

TEST(Sizing, TorusForCoversRequest) {
  for (int n : {1, 7, 64, 100, 1000}) {
    const auto t = make_torus_for(n);
    EXPECT_GE(t->num_nodes(), n);
    EXPECT_LE(t->num_nodes(), 3 * n + 8) << "oversizing too much for " << n;
  }
}

TEST(Sizing, DragonflyForCoversRequest) {
  for (int n : {1, 10, 64, 200, 2000}) {
    const auto t = make_dragonfly_for(n);
    EXPECT_GE(t->num_nodes(), n);
  }
}

TEST(Sizing, FatTreeForCoversRequest) {
  for (int n : {1, 16, 100, 500}) {
    const auto t = make_fattree_for(n);
    EXPECT_GE(t->num_nodes(), n);
  }
}

}  // namespace
}  // namespace hps::topo
