// Determinism suite: the study must be observationally identical however it
// is scheduled. Running the mini corpus with 1 thread and with 8 must
// produce byte-identical serialized outcome caches and identical ledger
// records — wall_seconds is the only field allowed to differ, so it is
// zeroed before comparing. This pins the hot-path overhaul's contract: the
// calendar queue, event pools, and incremental ripple may change how fast
// results arrive, never which results.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/study.hpp"
#include "obs/ledger.hpp"

namespace hps::core {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

StudyOptions mini_opts(int threads) {
  StudyOptions o;
  o.corpus.limit = 8;
  o.corpus.duration_scale = 0.1;
  o.threads = threads;
  return o;
}

/// wall_seconds is the one nondeterministic field (host timing); zero it so
/// the rest of the record set can be compared bit-for-bit.
void zero_walls(std::vector<TraceOutcome>& outcomes) {
  for (TraceOutcome& o : outcomes)
    for (SchemeOutcome& s : o.scheme) s.wall_seconds = 0;
}

TEST(Determinism, ThreadCountIsObservationallyInvisible) {
  StudyResult a = run_study(mini_opts(1));
  StudyResult b = run_study(mini_opts(8));
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  zero_walls(a.outcomes);
  zero_walls(b.outcomes);

  // Byte-identical serialized caches: the strongest equality the outcome
  // type supports without enumerating fields by hand.
  const std::string tag = std::to_string(getpid());
  const std::string pa = "/tmp/hps_det_a_" + tag + ".bin";
  const std::string pb = "/tmp/hps_det_b_" + tag + ".bin";
  save_outcomes(a.outcomes, pa, 42);
  save_outcomes(b.outcomes, pb, 42);
  EXPECT_EQ(slurp(pa), slurp(pb)) << "study outcomes depend on thread count";
  std::remove(pa.c_str());
  std::remove(pb.c_str());

  // Ledger records must match line for line as well (same study key since
  // threads is deliberately not part of study_cache_key).
  EXPECT_EQ(study_cache_key(mini_opts(1)), study_cache_key(mini_opts(8)));
  const std::string la = "/tmp/hps_det_la_" + tag + ".jsonl";
  const std::string lb = "/tmp/hps_det_lb_" + tag + ".jsonl";
  std::remove(la.c_str());
  std::remove(lb.c_str());
  obs::append_ledger(la, ledger_records(a.outcomes, 7));
  obs::append_ledger(lb, ledger_records(b.outcomes, 7));
  EXPECT_EQ(slurp(la), slurp(lb)) << "ledger records depend on thread count";
  std::remove(la.c_str());
  std::remove(lb.c_str());
}

TEST(Determinism, ProcessIsolationIsObservationallyInvisible) {
  // The process-isolated supervisor ships each TraceOutcome back over a pipe
  // with the same codec the cache uses; for healthy traces the study must be
  // byte-identical to the in-process thread pool, whatever the pool size.
  StudyResult a = run_study(mini_opts(4));
  StudyOptions popts = mini_opts(2);
  popts.isolate = IsolateMode::kProcess;
  StudyResult b = run_study(popts);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  zero_walls(a.outcomes);
  zero_walls(b.outcomes);

  const std::string tag = std::to_string(getpid());
  const std::string pa = "/tmp/hps_det_t_" + tag + ".bin";
  const std::string pb = "/tmp/hps_det_p_" + tag + ".bin";
  save_outcomes(a.outcomes, pa, 42);
  save_outcomes(b.outcomes, pb, 42);
  EXPECT_EQ(slurp(pa), slurp(pb)) << "study outcomes depend on isolation mode";
  std::remove(pa.c_str());
  std::remove(pb.c_str());

  // Isolation options are deliberately not part of the cache key: both modes
  // may share one result cache precisely because of the equality above.
  EXPECT_EQ(study_cache_key(mini_opts(2)), study_cache_key(popts));
}

TEST(Determinism, RepeatedRunsAreIdentical) {
  // Two identical single-threaded runs: a degenerate but cheap guard that
  // nothing (RNG reuse, static state, pool recycling) leaks between runs.
  StudyResult a = run_study(mini_opts(1));
  StudyResult b = run_study(mini_opts(1));
  zero_walls(a.outcomes);
  zero_walls(b.outcomes);
  const std::string tag = std::to_string(getpid());
  const std::string pa = "/tmp/hps_det_r1_" + tag + ".bin";
  const std::string pb = "/tmp/hps_det_r2_" + tag + ".bin";
  save_outcomes(a.outcomes, pa, 1);
  save_outcomes(b.outcomes, pb, 1);
  EXPECT_EQ(slurp(pa), slurp(pb));
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

}  // namespace
}  // namespace hps::core
