// Tests for the MFACT modeling tool: Hockney arithmetic on the logical
// clocks, multi-configuration concurrency (a sweep in one replay equals
// separate replays), counter attribution, the collective cost models, and
// the classifier.
#include "common/error.hpp"
#include <gtest/gtest.h>
#include <cmath>

#include "mfact/classify.hpp"
#include "mfact/coll_cost.hpp"
#include "mfact/model.hpp"
#include "trace/builder.hpp"
#include "trace/validate.hpp"

namespace hps::mfact {
namespace {

using trace::OpType;
using trace::RankBuilder;
using trace::Trace;
using trace::TraceMeta;

TraceMeta meta(Rank n) {
  TraceMeta m;
  m.app = "unit";
  m.nranks = n;
  m.ranks_per_node = 16;
  m.machine = "cielito";
  return m;
}

NetworkConfigPoint cfg(Bandwidth bw, SimTime lat, double cs = 1.0) {
  return {bw, lat, cs, ""};
}

constexpr SimTime kO = 500;  // overhead used in these tests
MfactParams params() {
  MfactParams p;
  p.overhead = kO;
  return p;
}

TEST(Mfact, PointToPointHockneyArithmetic) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 10000, 1, 0);
  b1.recv(0, 10000, 1, 0);
  // B = 1e9 B/s -> 10000 B = 10000 ns; L = 2000 ns.
  const auto res = run_mfact(t, {cfg(1e9, 2000)}, params());
  // Receiver clock: send(0) + o + L + m/B + o = 500+2000+10000+500 = 13000.
  EXPECT_EQ(res[0].total_time, 13000);
}

TEST(Mfact, ComputeScalesPerConfig) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.compute(1000);
  b1.compute(500);
  const auto res = run_mfact(t, {cfg(1e9, 100, 1.0), cfg(1e9, 100, 2.0)}, params());
  EXPECT_EQ(res[0].total_time, 1000);
  EXPECT_EQ(res[1].total_time, 2000);
}

TEST(Mfact, SweepMatchesIndividualRuns) {
  // The headline MFACT feature: evaluating k configs in one replay must give
  // identical results to k separate replays.
  Trace t(meta(4));
  for (Rank r = 0; r < 4; ++r) {
    RankBuilder b(t, r);
    b.compute(1000 * (r + 1));
    const Rank peer = r ^ 1;
    b.irecv(peer, 5000, 3, 0);
    b.isend(peer, 5000, 3, 0);
    b.waitall(0);
    b.allreduce(64, 0);
  }
  trace::validate_or_throw(t);
  const std::vector<NetworkConfigPoint> sweep = {cfg(1e9, 100), cfg(2e9, 100),
                                                 cfg(1e9, 5000), cfg(5e8, 50, 2.0)};
  const auto together = run_mfact(t, sweep, params());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto alone = run_mfact(t, {sweep[i]}, params());
    EXPECT_EQ(together[i].total_time, alone[0].total_time) << "config " << i;
    EXPECT_EQ(together[i].comm_time_mean, alone[0].comm_time_mean) << "config " << i;
  }
}

TEST(Mfact, WaitCounterCapturesImbalance) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.compute(100000);
  b0.barrier(0);
  b1.compute(1000);
  b1.barrier(0);
  const auto res = run_mfact(t, {cfg(1e9, 100)}, params());
  // Rank 1 waits ~99000 ns at the barrier.
  EXPECT_NEAR(res[0].counters.wait, 99000, 1.0);
}

TEST(Mfact, BandwidthCounterGrowsWhenBandwidthDrops) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 1000000, 1, 0);
  b1.recv(0, 1000000, 1, 0);
  const auto res = run_mfact(t, {cfg(1e9, 100), cfg(1e8, 100)}, params());
  EXPECT_NEAR(res[1].counters.bandwidth, 10.0 * res[0].counters.bandwidth,
              res[0].counters.bandwidth * 0.01);
  EXPECT_GT(res[1].total_time, res[0].total_time);
}

TEST(Mfact, OneWayStreamPipelinesLatency) {
  // A one-way message stream pays the latency once, not per message: the
  // logical clocks pipeline. 8x latency must NOT cost 100x the delta.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  for (int i = 0; i < 100; ++i) {
    b0.send(1, 8, 1, 0);
    b1.recv(0, 8, 1, 0);
  }
  const auto res = run_mfact(t, {cfg(1e9, 1000), cfg(1e9, 8000)}, params());
  EXPECT_GT(res[1].total_time, res[0].total_time);
  EXPECT_LT(res[1].total_time, res[0].total_time + 20 * 7000);
}

TEST(Mfact, PingPongSerializesLatency) {
  // Request-reply chains pay the full latency every round trip.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  for (int i = 0; i < 100; ++i) {
    b0.send(1, 8, 1, 0);
    b0.recv(1, 8, 2, 0);
    b1.recv(0, 8, 1, 0);
    b1.send(0, 8, 2, 0);
  }
  const auto res = run_mfact(t, {cfg(1e9, 1000), cfg(1e9, 8000)}, params());
  EXPECT_GT(res[1].total_time, res[0].total_time + 100 * 2 * 6000);
}

TEST(Mfact, UnexpectedMessageDoesNotWait) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 100, 1, 0);
  b1.compute(1000000);
  b1.recv(0, 100, 1, 0);
  const auto res = run_mfact(t, {cfg(1e9, 100)}, params());
  // Receiver only pays its overhead after the compute (message waited).
  EXPECT_EQ(res[0].total_time, 1000000 + kO);
  EXPECT_EQ(res[0].counters.wait, 0.0);
}

TEST(Mfact, CollectiveSynchronizes) {
  Trace t(meta(3));
  for (Rank r = 0; r < 3; ++r) {
    RankBuilder b(t, r);
    b.compute((r + 1) * 10000);
    b.allreduce(1024, 0);
    b.compute(100);
  }
  const auto res = run_mfact(t, {cfg(1e9, 100)}, params());
  // All ranks leave the allreduce together: total = 30000 + T_coll + 100.
  const auto cost = collective_cost(OpType::kAllreduce, 3, 1024,
                                    {1e9, 100, static_cast<double>(kO), 32 * KiB});
  EXPECT_NEAR(static_cast<double>(res[0].total_time), 30000 + cost.total() + 100, 2.0);
}

TEST(Mfact, WaitAllDrainsIrecvs) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b1.irecv(0, 1000, 1, 0);
  b1.irecv(0, 1000, 2, 0);
  b1.waitall(0);
  b0.compute(50000);
  b0.isend(1, 1000, 1, 0);
  b0.isend(1, 1000, 2, 0);
  b0.waitall(0);
  trace::validate_or_throw(t);
  const auto res = run_mfact(t, {cfg(1e9, 100)}, params());
  EXPECT_GT(res[0].total_time, 50000);
}

TEST(Mfact, DeadlockDiagnosed) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.recv(1, 10, 1, 0);  // matching send never posted before the recv on both
  b1.recv(0, 10, 1, 0);
  b0.send(1, 10, 1, 0);
  b1.send(0, 10, 1, 0);
  EXPECT_THROW(run_mfact(t, {cfg(1e9, 100)}, params()), Error);
}

TEST(CollCost, BarrierIsLatencyOnly) {
  const CostParams p{1e9, 1000, 500, 32 * KiB};
  const auto c = collective_cost(OpType::kBarrier, 16, 0, p);
  EXPECT_EQ(c.bandwidth_ns, 0.0);
  EXPECT_NEAR(c.latency_ns, 4 * 1500.0, 1e-9);  // log2(16) rounds
}

TEST(CollCost, AllreduceSwitchesToRabenseifner) {
  const CostParams p{1e9, 1000, 500, 32 * KiB};
  const auto small = collective_cost(OpType::kAllreduce, 16, 1024, p);
  const auto large = collective_cost(OpType::kAllreduce, 16, 1 << 20, p);
  // Small: log n x m/B; large: 2 (n-1)/n x m/B (much less than log n x m/B).
  EXPECT_NEAR(small.bandwidth_ns, 4 * 1024 / 1.0, 1.0);
  EXPECT_NEAR(large.bandwidth_ns, 2.0 * 15.0 / 16.0 * (1 << 20), 10.0);
  EXPECT_LT(large.bandwidth_ns, std::log2(16) * (1 << 20));
}

TEST(CollCost, AlltoallScalesWithCommSize) {
  const CostParams p{1e9, 1000, 500, 32 * KiB};
  const auto c8 = collective_cost(OpType::kAlltoall, 8, 1000, p);
  const auto c64 = collective_cost(OpType::kAlltoall, 64, 1000, p);
  EXPECT_GT(c64.total(), 7.0 * c8.total());
}

TEST(CollCost, SingleMemberFree) {
  const CostParams p{1e9, 1000, 500, 32 * KiB};
  EXPECT_EQ(collective_cost(OpType::kAllreduce, 1, 4096, p).total(), 0.0);
}

TEST(CollCost, ReduceScatterCheaperThanAllreduce) {
  const CostParams p{1e9, 1000, 500, 32 * KiB};
  const auto rs = collective_cost(OpType::kReduceScatter, 16, 1 << 20, p);
  const auto ar = collective_cost(OpType::kAllreduce, 16, 1 << 20, p);
  EXPECT_LT(rs.bandwidth_ns, ar.bandwidth_ns);
  EXPECT_GT(rs.total(), 0.0);
}

TEST(CollCost, ScanIsLatencyDominatedAtScale) {
  const CostParams p{1e9, 1000, 500, 32 * KiB};
  const auto small = collective_cost(OpType::kScan, 8, 64, p);
  const auto large = collective_cost(OpType::kScan, 128, 64, p);
  EXPECT_NEAR(large.latency_ns / small.latency_ns, 127.0 / 7.0, 0.01);
}

TEST(CollCost, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(2), 1);
  EXPECT_EQ(log2_ceil(3), 2);
  EXPECT_EQ(log2_ceil(1024), 10);
  EXPECT_EQ(log2_ceil(1025), 11);
}

TEST(Classify, ComputeBoundTrace) {
  Trace t(meta(4));
  for (Rank r = 0; r < 4; ++r) {
    RankBuilder b(t, r);
    b.compute(100 * kMillisecond);
    b.allreduce(8, 0);
  }
  const Classification cl = classify(t, 1e9, 2500);
  EXPECT_EQ(cl.app_class, AppClass::kComputationBound);
  EXPECT_EQ(cl.group, SensitivityGroup::kNotCommSensitive);
  EXPECT_LT(cl.bw_sensitivity, 0.01);
}

TEST(Classify, BandwidthBoundTrace) {
  Trace t(meta(4));
  for (Rank r = 0; r < 4; ++r) {
    RankBuilder b(t, r);
    b.compute(kMicrosecond);
    b.alltoall(1 * MiB, 0);
  }
  const Classification cl = classify(t, 1e9, 2500);
  EXPECT_EQ(cl.group, SensitivityGroup::kCommSensitive);
  EXPECT_GT(cl.bw_sensitivity, 1.0);  // nearly pure bandwidth: ~7x
}

TEST(Classify, LoadImbalanceBoundTrace) {
  Trace t(meta(4));
  for (Rank r = 0; r < 4; ++r) {
    RankBuilder b(t, r);
    for (int i = 0; i < 10; ++i) {
      b.compute(r == 0 ? 10 * kMillisecond : kMillisecond);
      b.barrier(0);
    }
  }
  const Classification cl = classify(t, 1e9, 2500);
  EXPECT_EQ(cl.app_class, AppClass::kLoadImbalanceBound);
  EXPECT_EQ(cl.group, SensitivityGroup::kNotCommSensitive);
  EXPECT_GT(cl.wait_fraction, 0.3);
}

TEST(Classify, LatencyBoundTrace) {
  // Ping-pong of tiny messages: round-trip latency dominates.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  for (int i = 0; i < 2000; ++i) {
    b0.send(1, 8, 1, 0);
    b0.recv(1, 8, 2, 0);
    b1.recv(0, 8, 1, 0);
    b1.send(0, 8, 2, 0);
  }
  const Classification cl = classify(t, 1e9, 2500);
  EXPECT_EQ(cl.app_class, AppClass::kLatencyBound);
}

TEST(Classify, SweepShapeSane) {
  const auto sweep = make_sensitivity_sweep(1e9, 2000);
  ASSERT_EQ(sweep.size(), static_cast<std::size_t>(kSweepNumPoints));
  EXPECT_DOUBLE_EQ(sweep[kSweepBwUp8].bandwidth, 8e9);
  EXPECT_DOUBLE_EQ(sweep[kSweepBwDown8].bandwidth, 1e9 / 8);
  EXPECT_EQ(sweep[kSweepLatUp8].latency, 16000);
  EXPECT_EQ(sweep[kSweepLatDown8].latency, 250);
}

TEST(LogGp, PacesSendBursts) {
  // 50 back-to-back 64 KiB sends: Hockney charges the sender only o each,
  // LogGP serializes them at the NIC (g + m*G), so LogGP's total is much
  // larger and closer to what a real NIC would allow.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  for (int i = 0; i < 50; ++i) b0.isend(1, 64 * 1024, 1, 0);
  b0.waitall(0);
  for (int i = 0; i < 50; ++i) b1.recv(0, 64 * 1024, 1, 0);
  trace::validate_or_throw(t);

  MfactParams hockney = params();
  MfactParams loggp = params();
  loggp.p2p_model = P2pCostModel::kLogGP;
  const auto h = run_mfact(t, {cfg(1e9, 2000)}, hockney);
  const auto g = run_mfact(t, {cfg(1e9, 2000)}, loggp);
  // 50 x 65536 B at 1 B/ns = ~3.3 ms of NIC serialization under LogGP.
  EXPECT_GT(g[0].total_time, h[0].total_time + 2 * kMillisecond);
}

TEST(LogGp, SingleMessageMatchesHockney) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 10000, 1, 0);
  b1.recv(0, 10000, 1, 0);
  MfactParams loggp = params();
  loggp.p2p_model = P2pCostModel::kLogGP;
  const auto h = run_mfact(t, {cfg(1e9, 2000)}, params());
  const auto g = run_mfact(t, {cfg(1e9, 2000)}, loggp);
  EXPECT_EQ(h[0].total_time, g[0].total_time);
}

}  // namespace
}  // namespace hps::mfact
