// hpcsweepd serving stack: protocol codecs, admission queue, result cache,
// and a live daemon exercised over real Unix sockets — framing round-trips,
// poisoned/oversized request rejection, shared-cache coherence across
// concurrent clients, single-flight coalescing, queue-full backpressure, and
// drain on SIGTERM.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/serve_ledger.hpp"
#include "robust/fault.hpp"
#include "robust/interrupt.hpp"
#include "robust/ipc.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/spill.hpp"

namespace hps::serve {
namespace {

namespace ipc = hps::robust::ipc;

// ---------------------------------------------------------------------------
// Protocol codecs

TEST(ServeProtocol, RequestRoundTripPreservesEveryField) {
  Request r;
  r.kind = Request::Kind::kStudy;
  r.seed = 0xdeadbeefcafe1234ull;
  r.duration_scale = 0.375;
  r.limit = 17;
  r.force_recompute = true;
  r.wall_deadline_s = 12.5;
  r.max_des_events = 9876543210ull;
  r.virtual_horizon_ns = 1234567890123ll;

  const Request got = decode_request(encode_request(r));
  EXPECT_EQ(got.kind, r.kind);
  EXPECT_EQ(got.seed, r.seed);
  EXPECT_DOUBLE_EQ(got.duration_scale, r.duration_scale);
  EXPECT_EQ(got.limit, r.limit);
  EXPECT_EQ(got.force_recompute, r.force_recompute);
  EXPECT_DOUBLE_EQ(got.wall_deadline_s, r.wall_deadline_s);
  EXPECT_EQ(got.max_des_events, r.max_des_events);
  EXPECT_EQ(got.virtual_horizon_ns, r.virtual_horizon_ns);
}

TEST(ServeProtocol, SummaryAndStatsRoundTrip) {
  Summary s;
  s.status = Status::kDegraded;
  s.cache_hit = true;
  s.records = 42;
  s.degraded = 3;
  s.wall_seconds = 1.25;
  s.detail = "three traces hit the wall deadline";
  const Summary gs = decode_summary(encode_summary(s));
  EXPECT_EQ(gs.status, s.status);
  EXPECT_EQ(gs.cache_hit, s.cache_hit);
  EXPECT_EQ(gs.records, s.records);
  EXPECT_EQ(gs.degraded, s.degraded);
  EXPECT_DOUBLE_EQ(gs.wall_seconds, s.wall_seconds);
  EXPECT_EQ(gs.detail, s.detail);

  Stats st;
  st.requests = 10;
  st.studies_run = 4;
  st.cache_hits = 5;
  st.cache_misses = 4;
  st.cache_bytes = 123456;
  st.cache_entries = 4;
  st.cache_evictions = 1;
  st.coalesced = 1;
  st.rejected_queue_full = 2;
  st.rejected_draining = 1;
  st.rejected_bad = 3;
  st.rejected_conn_limit = 7;
  st.active = 1;
  st.queued = 2;
  const Stats gt = decode_stats(encode_stats(st));
  EXPECT_EQ(gt.requests, st.requests);
  EXPECT_EQ(gt.studies_run, st.studies_run);
  EXPECT_EQ(gt.cache_hits, st.cache_hits);
  EXPECT_EQ(gt.cache_misses, st.cache_misses);
  EXPECT_EQ(gt.cache_bytes, st.cache_bytes);
  EXPECT_EQ(gt.cache_entries, st.cache_entries);
  EXPECT_EQ(gt.cache_evictions, st.cache_evictions);
  EXPECT_EQ(gt.coalesced, st.coalesced);
  EXPECT_EQ(gt.rejected_queue_full, st.rejected_queue_full);
  EXPECT_EQ(gt.rejected_draining, st.rejected_draining);
  EXPECT_EQ(gt.rejected_bad, st.rejected_bad);
  EXPECT_EQ(gt.rejected_conn_limit, st.rejected_conn_limit);
  EXPECT_EQ(gt.active, st.active);
  EXPECT_EQ(gt.queued, st.queued);
  // JSON rendering carries every counter by name.
  const std::string j = stats_to_json(st);
  EXPECT_NE(j.find("\"requests\":10"), std::string::npos);
  EXPECT_NE(j.find("\"rejected_queue_full\":2"), std::string::npos);
}

TEST(ServeProtocol, DecodeRejectsGarbledPayloads) {
  Request r;
  const std::string ok = encode_request(r);
  EXPECT_THROW(decode_request(ok.substr(0, ok.size() - 3)), hps::Error);  // short
  EXPECT_THROW(decode_request(ok + "xx"), hps::Error);                    // trailing
  std::string wrong_version = ok;
  wrong_version[0] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_THROW(decode_request(wrong_version), hps::Error);
  std::string bad_kind = ok;
  bad_kind[4] = 99;  // kind byte follows the u32 version
  EXPECT_THROW(decode_request(bad_kind), hps::Error);
  EXPECT_THROW(decode_request(""), hps::Error);
}

TEST(ServeProtocol, Names) {
  EXPECT_STREQ(status_name(Status::kOk), "ok");
  EXPECT_STREQ(status_name(Status::kQueueFull), "queue-full");
  EXPECT_STREQ(status_name(Status::kDraining), "draining");
  EXPECT_STREQ(request_kind_name(Request::Kind::kStudy), "study");
  EXPECT_STREQ(request_kind_name(Request::Kind::kShutdown), "shutdown");
}

// ---------------------------------------------------------------------------
// Framing round-trip over a real socketpair (the daemon's actual transport)

TEST(ServeFraming, RequestFrameRoundTripsOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  Request r;
  r.seed = 7;
  r.limit = 3;
  const std::string payload = encode_request(r);
  ASSERT_TRUE(ipc::write_frame(sv[0], {ipc::MsgType::kRequest, payload}));

  ipc::Message m;
  ASSERT_EQ(ipc::read_message(sv[1], m, kMaxRequestBytes), ipc::ReadStatus::kMessage);
  EXPECT_EQ(m.type, ipc::MsgType::kRequest);
  const Request got = decode_request(m.payload);
  EXPECT_EQ(got.seed, 7u);
  EXPECT_EQ(got.limit, 3);
  ::close(sv[0]);
  ::close(sv[1]);
}

// ---------------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueue, BackpressureAtCapacityAndRefusalAfterClose) {
  AdmissionQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), AdmissionQueue<int>::Push::kAccepted);
  EXPECT_EQ(q.try_push(2), AdmissionQueue<int>::Push::kAccepted);
  EXPECT_EQ(q.try_push(3), AdmissionQueue<int>::Push::kFull);
  EXPECT_EQ(q.size(), 2u);

  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);  // FIFO
  EXPECT_EQ(q.try_push(3), AdmissionQueue<int>::Push::kAccepted);

  q.close();
  EXPECT_EQ(q.try_push(4), AdmissionQueue<int>::Push::kClosed);
  // The admitted backlog drains even after close — admission is a promise.
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(q.pop(out));  // closed and empty: consumer exits
}

TEST(AdmissionQueue, PopBlocksUntilPushOrClose) {
  AdmissionQueue<int> q(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    int out = 0;
    if (q.pop(out) && out == 99) got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  EXPECT_EQ(q.try_push(99), AdmissionQueue<int>::Push::kAccepted);
  consumer.join();
  EXPECT_TRUE(got.load());

  std::thread waiter([&] {
    int out = 0;
    EXPECT_FALSE(q.pop(out));
  });
  q.close();
  waiter.join();
}

// ---------------------------------------------------------------------------
// ResultCache

std::shared_ptr<const CachedResult> make_result(std::size_t line_bytes) {
  auto r = std::make_shared<CachedResult>();
  r->records.push_back(std::string(line_bytes, 'r'));
  return r;
}

TEST(ResultCache, LruEvictionUnderByteBudget) {
  // Budget fits roughly two 4 KB entries (plus struct overhead).
  ResultCache cache(2 * (4096 + 512));
  cache.insert(1, make_result(4096));
  cache.insert(2, make_result(4096));
  EXPECT_NE(cache.lookup(1), nullptr);  // bump 1 to most-recent
  cache.insert(3, make_result(4096));   // evicts 2, the LRU entry
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);

  const auto c = cache.counters();
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.hits, 3u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_GT(c.bytes, 0u);
}

TEST(ResultCache, EvictedEntryStaysAliveForItsHolder) {
  ResultCache cache(4096 + 512);
  cache.insert(1, make_result(4096));
  auto held = cache.lookup(1);
  ASSERT_NE(held, nullptr);
  cache.insert(2, make_result(4096));  // evicts 1 while we still hold it
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(held->records.size(), 1u);  // bytes remain valid for the streamer
}

TEST(ResultCache, OversizedEntryAndZeroBudgetAreDropped) {
  ResultCache tiny(64);
  tiny.insert(1, make_result(4096));  // larger than the whole budget
  EXPECT_EQ(tiny.lookup(1), nullptr);

  ResultCache off(0);
  off.insert(1, make_result(8));
  EXPECT_EQ(off.lookup(1), nullptr);
  EXPECT_EQ(off.counters().entries, 0u);
}

TEST(ResultCache, ReplaceUpdatesAccounting) {
  ResultCache cache(1 << 20);
  cache.insert(1, make_result(1000));
  const auto before = cache.counters().bytes;
  cache.insert(1, make_result(100));
  const auto after = cache.counters().bytes;
  EXPECT_LT(after, before);
  EXPECT_EQ(cache.counters().entries, 1u);
}

// ---------------------------------------------------------------------------
// Live daemon over Unix sockets

struct DaemonFixture {
  std::string path;
  std::unique_ptr<Server> server;
  std::thread runner;

  explicit DaemonFixture(ServerOptions opts) {
    path = "/tmp/hps_serve_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter()++) + ".sock";
    opts.socket_path = path;
    opts.install_signal_guard = false;  // tests drive the interrupt flag directly
    server = std::make_unique<Server>(std::move(opts));
    runner = std::thread([this] { server->run(); });
  }

  ~DaemonFixture() {
    if (server) server->shutdown();
    if (runner.joinable()) runner.join();
    ::unlink(path.c_str());
    robust::clear_interrupt();
  }

  static ServerOptions small() {
    ServerOptions o;
    o.dispatchers = 2;
    o.queue_capacity = 8;
    o.cache_bytes = 16u << 20;
    o.max_duration_scale = 0.1;
    return o;
  }

  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
};

Request tiny_study(std::uint64_t seed, std::int32_t limit = 2) {
  Request r;
  r.kind = Request::Kind::kStudy;
  r.seed = seed;
  r.duration_scale = 0.05;
  r.limit = limit;
  return r;
}

TEST(ServeDaemon, PingStatsAndStudyRoundTrip) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  EXPECT_TRUE(c.ping());

  const auto reply = c.study(tiny_study(7));
  ASSERT_EQ(reply.summary.status, Status::kOk);
  EXPECT_FALSE(reply.summary.cache_hit);
  EXPECT_GT(reply.summary.records, 0u);
  EXPECT_EQ(reply.records.size(), reply.summary.records);
  for (const std::string& line : reply.records) {
    EXPECT_EQ(line.front(), '{');  // ledger JSON lines
    EXPECT_NE(line.find("\"study_key\""), std::string::npos);
  }

  const Stats st = c.stats();
  EXPECT_EQ(st.requests, 1u);
  EXPECT_EQ(st.studies_run, 1u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_hits, 0u);
}

TEST(ServeDaemon, RepeatedRequestServedFromSharedCacheByteIdentical) {
  DaemonFixture d(DaemonFixture::small());
  // Two *separate* clients — the cache is shared daemon state, not
  // per-connection state.
  Client c1 = Client::connect_unix(d.path);
  const auto first = c1.study(tiny_study(11));
  ASSERT_EQ(first.summary.status, Status::kOk);
  EXPECT_FALSE(first.summary.cache_hit);

  Client c2 = Client::connect_unix(d.path);
  const auto second = c2.study(tiny_study(11));
  ASSERT_EQ(second.summary.status, Status::kOk);
  EXPECT_TRUE(second.summary.cache_hit);
  EXPECT_EQ(second.records, first.records);  // byte-identical replay

  const Stats st = c2.stats();
  EXPECT_EQ(st.studies_run, 1u);  // one computation served both
  EXPECT_EQ(st.cache_hits, 1u);

  // force_recompute bypasses the cache and recomputes. Records carry a
  // per-trace wall_seconds measurement, so a *re*computation is identical
  // modulo that one timing field.
  Request forced = tiny_study(11);
  forced.force_recompute = true;
  const auto third = c2.study(forced);
  ASSERT_EQ(third.summary.status, Status::kOk);
  EXPECT_FALSE(third.summary.cache_hit);
  const auto strip_wall = [](std::string line) {
    const std::size_t at = line.find(",\"wall_seconds\":");
    if (at != std::string::npos) line.resize(at);
    return line;
  };
  ASSERT_EQ(third.records.size(), first.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i)
    EXPECT_EQ(strip_wall(third.records[i]), strip_wall(first.records[i]));
  EXPECT_EQ(c2.stats().studies_run, 2u);
}

TEST(ServeDaemon, ConcurrentIdenticalClientsCoalesceToOneComputation) {
  ServerOptions o = DaemonFixture::small();
  o.dispatchers = 2;
  DaemonFixture d(std::move(o));

  constexpr int kClients = 6;
  std::vector<Client::StudyReply> replies(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c = Client::connect_unix(d.path);
      replies[static_cast<std::size_t>(i)] = c.study(tiny_study(23, 3));
    });
  }
  for (std::thread& t : threads) t.join();

  for (const auto& r : replies) {
    ASSERT_EQ(r.summary.status, Status::kOk);
    EXPECT_EQ(r.records, replies[0].records);  // all byte-identical
  }
  Client c = Client::connect_unix(d.path);
  const Stats st = c.stats();
  // Single-flight: with all requests racing on one key, the study ran far
  // fewer times than it was asked for (exactly once unless a client arrived
  // after the result was already cached *and* evicted — impossible here).
  EXPECT_EQ(st.studies_run, 1u);
  EXPECT_EQ(st.cache_hits + st.coalesced, static_cast<std::uint64_t>(kClients - 1));
}

TEST(ServeDaemon, PoisonedAndOversizedRequestsAreRejectedNotFatal) {
  DaemonFixture d(DaemonFixture::small());

  {  // CRC-poisoned frame → kBadRequest reject, connection closed.
    Client c = Client::connect_unix(d.path);
    std::string frame = ipc::encode_frame(
        {ipc::MsgType::kRequest, encode_request(tiny_study(1))});
    frame.back() ^= 0x01;
    ASSERT_EQ(::write(c.fd(), frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    ipc::Message m;
    ASSERT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kMessage);
    EXPECT_EQ(m.type, ipc::MsgType::kReject);
    EXPECT_EQ(decode_summary(m.payload).status, Status::kBadRequest);
    EXPECT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kEof);
  }
  {  // Oversized length field → kOversized reject before any allocation.
    Client c = Client::connect_unix(d.path);
    const std::string big(kMaxRequestBytes + 64, 'z');
    const std::string frame = ipc::encode_frame({ipc::MsgType::kRequest, big});
    // The daemon rejects on the 8-byte header; it may close before we finish
    // writing the body, so a short write is fine.
    (void)::write(c.fd(), frame.data(), frame.size());
    ipc::Message m;
    ASSERT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kMessage);
    EXPECT_EQ(m.type, ipc::MsgType::kReject);
    EXPECT_EQ(decode_summary(m.payload).status, Status::kOversized);
  }
  {  // Undecodable payload inside a well-framed message → kBadRequest.
    Client c = Client::connect_unix(d.path);
    ASSERT_TRUE(ipc::write_frame(c.fd(), {ipc::MsgType::kRequest, "not-a-request"}));
    ipc::Message m;
    ASSERT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kMessage);
    EXPECT_EQ(m.type, ipc::MsgType::kReject);
    EXPECT_EQ(decode_summary(m.payload).status, Status::kBadRequest);
  }

  // The daemon survived all three abuses and still serves honest clients.
  Client c = Client::connect_unix(d.path);
  EXPECT_TRUE(c.ping());
  EXPECT_EQ(c.study(tiny_study(2)).summary.status, Status::kOk);
  EXPECT_GE(c.stats().rejected_bad, 3u);
}

TEST(ServeDaemon, QueueFullRequestsGetExplicitBackpressure) {
  ServerOptions o = DaemonFixture::small();
  o.dispatchers = 1;      // one executor...
  o.queue_capacity = 1;   // ...and room for exactly one waiter
  DaemonFixture d(std::move(o));

  // Fill the executor, then the queue, with *distinct* studies (distinct
  // seeds → distinct cache keys, so single-flight cannot coalesce them).
  // Admission is sequenced via the stats probe: the second holder is only
  // sent once the first has been popped by the dispatcher — otherwise the
  // holder itself can race the pop and eat the queue-full rejection.
  Client probe = Client::connect_unix(d.path);
  const auto wait_for = [&](auto&& pred) {
    for (int i = 0; i < 800; ++i) {
      if (pred(probe.stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };

  // Holder studies are sized for a saturation window of hundreds of ms —
  // the overflow probe fires within ~1 ms of observing saturation, long
  // before the executing study can finish and free the queue slot.
  const auto big_study = [](std::uint64_t seed) {
    Request r = tiny_study(seed, /*limit=*/6);
    r.duration_scale = 0.1;
    return r;
  };
  std::vector<std::thread> holders;
  holders.emplace_back([&] {
    Client c = Client::connect_unix(d.path);
    EXPECT_EQ(c.study(big_study(100)).summary.status, Status::kOk);
  });
  const bool executing = wait_for([](const Stats& st) { return st.active >= 1; });
  holders.emplace_back([&] {
    Client c = Client::connect_unix(d.path);
    EXPECT_EQ(c.study(big_study(101)).summary.status, Status::kOk);
  });
  const bool saturated =
      wait_for([](const Stats& st) { return st.active >= 1 && st.queued >= 1; });

  Client::StudyReply overflow;
  long long elapsed_ms = 0;
  if (saturated) {
    // The next distinct study must be rejected immediately — not queued,
    // not hung.
    const auto start = std::chrono::steady_clock::now();
    overflow = probe.study(big_study(999));
    elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  }
  for (std::thread& t : holders) t.join();  // join before any assert bails out

  ASSERT_TRUE(executing) << "first study never started executing";
  ASSERT_TRUE(saturated) << "daemon never saturated";
  EXPECT_EQ(overflow.summary.status, Status::kQueueFull);
  EXPECT_EQ(overflow.records.size(), 0u);
  EXPECT_LT(elapsed_ms, 2000);
  EXPECT_GE(probe.stats().rejected_queue_full, 1u);
}

TEST(ServeDaemon, SigtermDrainsGracefully) {
  ServerOptions o = DaemonFixture::small();
  DaemonFixture d(std::move(o));

  Client c = Client::connect_unix(d.path);
  ASSERT_EQ(c.study(tiny_study(31)).summary.status, Status::kOk);

  // Same path the installed signal handler takes on SIGTERM.
  robust::request_interrupt(SIGTERM);
  d.runner.join();  // run() must return on its own

  // Post-drain: the socket is gone and new connections are refused.
  EXPECT_THROW(Client::connect_unix(d.path), hps::Error);

  // A draining daemon answered in-flight waiters; its final counters are
  // still readable in-process.
  const Stats st = d.server->stats();
  EXPECT_EQ(st.requests, 1u);
  robust::clear_interrupt();
}

TEST(ServeDaemon, StudyRequestDuringDrainIsRejectedAsDraining) {
  ServerOptions o = DaemonFixture::small();
  DaemonFixture d(std::move(o));

  Client c = Client::connect_unix(d.path);
  ASSERT_TRUE(c.ping());

  // Flip into drain while the connection is already open: the open
  // connection's next study must get kDraining, not a hang.
  robust::request_interrupt(SIGTERM);
  const auto r = c.study(tiny_study(41));
  EXPECT_EQ(r.summary.status, Status::kDraining);
  d.runner.join();
  robust::clear_interrupt();
}

TEST(ServeDaemon, AdmissionClampsBoundWhatRemoteCallersGet) {
  ServerOptions o = DaemonFixture::small();
  o.max_duration_scale = 0.05;
  o.max_limit = 2;
  DaemonFixture d(std::move(o));

  Client c = Client::connect_unix(d.path);
  Request greedy = tiny_study(51, /*limit=*/0);  // 0 = whole corpus
  greedy.duration_scale = 5.0;
  const auto r = c.study(greedy);
  ASSERT_EQ(r.summary.status, Status::kOk);
  // Clamped to max_limit=2 specs; each spec yields grid-many records, so the
  // reply is bounded well below the full corpus.
  EXPECT_LE(r.summary.records, 2u * 16u);
  EXPECT_GT(r.summary.records, 0u);
}

TEST(ServeDaemon, TcpLoopbackServesTheSameProtocol) {
  ServerOptions o = DaemonFixture::small();
  o.tcp_port = 0;  // ephemeral
  DaemonFixture d(std::move(o));
  ASSERT_GT(d.server->tcp_port(), 0);

  Client c = Client::connect_tcp("127.0.0.1", d.server->tcp_port());
  EXPECT_TRUE(c.ping());
  const auto r = c.study(tiny_study(61));
  EXPECT_EQ(r.summary.status, Status::kOk);
  EXPECT_GT(r.records.size(), 0u);
}

TEST(ServeDaemon, ConnectionCapRejectsExcessConnections) {
  ServerOptions o = DaemonFixture::small();
  o.max_connections = 1;
  DaemonFixture d(std::move(o));

  Client first = Client::connect_unix(d.path);
  ASSERT_TRUE(first.ping());  // the single connection slot is taken

  // The next connection is accepted, told why it cannot be served, and
  // closed — never a silent hang, never an unbounded thread.
  Client second = Client::connect_unix(d.path);
  ipc::Message m;
  ASSERT_EQ(ipc::read_message(second.fd(), m), ipc::ReadStatus::kMessage);
  EXPECT_EQ(m.type, ipc::MsgType::kReject);
  const Summary s = decode_summary(m.payload);
  EXPECT_EQ(s.status, Status::kQueueFull);
  EXPECT_NE(s.detail.find("connection limit"), std::string::npos);
  EXPECT_EQ(ipc::read_message(second.fd(), m), ipc::ReadStatus::kEof);

  // The admitted connection is unaffected, and the rejection was counted.
  EXPECT_TRUE(first.ping());
  EXPECT_GE(first.stats().rejected_conn_limit, 1u);
}

TEST(ServeDaemon, TcpShutdownIsRefusedUnixShutdownWorks) {
  ServerOptions o = DaemonFixture::small();
  o.tcp_port = 0;
  DaemonFixture d(std::move(o));
  ASSERT_GT(d.server->tcp_port(), 0);

  // Shutdown over TCP: explicit bad-request reject, daemon stays up.
  Client tcp = Client::connect_tcp("127.0.0.1", d.server->tcp_port());
  const Summary refused = tcp.shutdown_server();
  EXPECT_EQ(refused.status, Status::kBadRequest);
  EXPECT_NE(refused.detail.find("Unix-domain"), std::string::npos);

  Client unix_client = Client::connect_unix(d.path);
  EXPECT_TRUE(unix_client.ping());  // still serving

  // The same request over the Unix socket drains as before.
  const Summary ack = unix_client.shutdown_server();
  EXPECT_EQ(ack.status, Status::kOk);
  d.runner.join();
}

TEST(ServeListener, RefusesToStealALiveDaemonsSocket) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  ASSERT_TRUE(c.ping());

  ServerOptions o = DaemonFixture::small();
  o.socket_path = d.path;
  EXPECT_THROW(Server second(std::move(o)), hps::Error);

  // The live daemon kept its socket and its traffic.
  EXPECT_TRUE(c.ping());
}

TEST(ServeListener, StaleSocketFileIsReclaimed) {
  const std::string path = "/tmp/hps_serve_stale_" + std::to_string(::getpid()) +
                           ".sock";
  ::unlink(path.c_str());
  // Bind a socket, then close it: the filesystem entry survives with no
  // listener behind it — exactly what a crashed daemon leaves.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ::close(fd);

  ServerOptions o = DaemonFixture::small();
  o.socket_path = path;
  EXPECT_NO_THROW({ Server reclaimed(std::move(o)); });  // stale file reclaimed
  ::unlink(path.c_str());
}

TEST(ServeDaemon, ShutdownRequestAcksThenDrains) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  const Summary ack = c.shutdown_server();
  EXPECT_EQ(ack.status, Status::kOk);
  d.runner.join();
  EXPECT_THROW(Client::connect_unix(d.path), hps::Error);
}

// ---------------------------------------------------------------------------
// Protocol v2: observability extensions stay backward compatible

TEST(ServeProtocol, StatsV2FieldsRoundTrip) {
  Stats st;
  st.requests = 10;
  st.uptime_ms = 123456;
  st.ledger_records = 10;
  st.spans_dropped = 3;
  const Stats gt = decode_stats(encode_stats(st));
  EXPECT_EQ(gt.requests, st.requests);
  EXPECT_EQ(gt.uptime_ms, st.uptime_ms);
  EXPECT_EQ(gt.ledger_records, st.ledger_records);
  EXPECT_EQ(gt.spans_dropped, st.spans_dropped);
  const std::string j = stats_to_json(st);
  EXPECT_NE(j.find("\"uptime_ms\":123456"), std::string::npos);
  EXPECT_NE(j.find("\"spans_dropped\":3"), std::string::npos);
}

TEST(ServeProtocol, V1StatsPayloadStillDecodesWithV2FieldsDefaulted) {
  Stats st;
  st.requests = 7;
  st.cache_hits = 4;
  st.uptime_ms = 999;       // v2-only — must vanish from a v1 payload
  st.ledger_records = 888;
  st.spans_dropped = 777;
  // Reconstruct what a v1 daemon would have sent: every later extension is
  // *appended*, so drop the six v4 u64s, the five v3 u64s, and the three v2
  // u64s, then patch the version word.
  std::string v1 = encode_stats(st);
  ASSERT_GT(v1.size(), 14u * 8u);
  v1.resize(v1.size() - 14 * 8);
  v1[0] = 1;  // little-endian u32 version: 4 -> 1
  const Stats gt = decode_stats(v1);
  EXPECT_EQ(gt.requests, 7u);
  EXPECT_EQ(gt.cache_hits, 4u);
  EXPECT_EQ(gt.uptime_ms, 0u);
  EXPECT_EQ(gt.ledger_records, 0u);
  EXPECT_EQ(gt.spans_dropped, 0u);
  // A v1 payload that *kept* the trailing bytes is garbage, not half-valid.
  std::string v1_trailing = encode_stats(st);
  v1_trailing[0] = 1;
  EXPECT_THROW(decode_stats(v1_trailing), hps::Error);
}

TEST(ServeProtocol, V1RequestPayloadStillDecodesButMayNotClaimMetrics) {
  Request r = tiny_study(5);
  std::string v1 = encode_request(r);
  v1.resize(v1.size() - 8);  // drop the v3 deadline_ms tail
  v1[0] = 1;  // same byte layout in v1; only the version word moved
  const Request got = decode_request(v1);
  EXPECT_EQ(got.kind, Request::Kind::kStudy);
  EXPECT_EQ(got.seed, 5u);

  // kMetrics is a v2 kind: valid in a v2+ payload, out of range in v1.
  Request m;
  m.kind = Request::Kind::kMetrics;
  std::string enc = encode_request(m);
  EXPECT_EQ(decode_request(enc).kind, Request::Kind::kMetrics);
  enc.resize(enc.size() - 8);
  enc[0] = 1;
  EXPECT_THROW(decode_request(enc), hps::Error);
}

TEST(ServeMetrics, MetricsReplyCodecRoundTrip) {
  MetricsReply m;
  m.stats.requests = 5;
  m.stats.spans_dropped = 2;
  m.uptime_seconds = 12.5;
  MetricsReply::Hist h;
  h.name = std::string(kPhaseMetricPrefix) + "execute";
  h.data.bounds = {0.001, 0.01, 0.1};
  h.data.buckets = {1, 2, 3, 0};
  h.data.count = 6;
  h.data.sum = 0.123;
  m.hists.push_back(h);
  obs::CostCell cell;
  cell.app_class = "stencil";
  cell.scheme = "packet";
  cell.count = 4;
  cell.wall_seconds = 0.25;
  m.costs.push_back(cell);

  const MetricsReply got = decode_metrics(encode_metrics(m));
  EXPECT_EQ(got.stats.requests, 5u);
  EXPECT_EQ(got.stats.spans_dropped, 2u);
  EXPECT_DOUBLE_EQ(got.uptime_seconds, 12.5);
  ASSERT_EQ(got.hists.size(), 1u);
  EXPECT_EQ(got.hists[0].name, h.name);
  EXPECT_EQ(got.hists[0].data.bounds, h.data.bounds);
  EXPECT_EQ(got.hists[0].data.buckets, h.data.buckets);
  EXPECT_EQ(got.hists[0].data.count, 6u);
  EXPECT_DOUBLE_EQ(got.hists[0].data.sum, 0.123);
  ASSERT_EQ(got.costs.size(), 1u);
  EXPECT_EQ(got.costs[0].app_class, "stencil");
  EXPECT_EQ(got.costs[0].scheme, "packet");
  EXPECT_EQ(got.costs[0].count, 4u);
  EXPECT_DOUBLE_EQ(got.costs[0].wall_seconds, 0.25);
  ASSERT_NE(got.find(h.name), nullptr);
  EXPECT_EQ(got.find("no.such.metric"), nullptr);

  const std::string enc = encode_metrics(m);
  EXPECT_THROW(decode_metrics(enc.substr(0, enc.size() - 5)), hps::Error);
  EXPECT_THROW(decode_metrics(enc + "z"), hps::Error);
  EXPECT_THROW(decode_metrics(""), hps::Error);
}

// ---------------------------------------------------------------------------
// Live observability: kMetrics, serve ledger, tracing neutrality

TEST(ServeMetrics, LiveDaemonServesPhaseHistogramsAndCosts) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  ASSERT_EQ(c.study(tiny_study(71)).summary.status, Status::kOk);       // miss
  ASSERT_TRUE(c.study(tiny_study(71)).summary.cache_hit);               // hit

  const MetricsReply m = c.metrics();
  EXPECT_EQ(m.stats.requests, 2u);
  EXPECT_EQ(m.stats.cache_hits, 1u);
  EXPECT_GT(m.uptime_seconds, 0.0);

  // Every request passes decode/clamp/cache_lookup/stream; only the computed
  // one passes queue_wait/execute/cache_insert.
  const auto count_of = [&](const std::string& name) -> std::uint64_t {
    const MetricsReply::Hist* h = m.find(name);
    return h ? h->data.count : 0;
  };
  EXPECT_EQ(count_of(kRequestMetric), 2u);
  EXPECT_EQ(count_of(std::string(kPhaseMetricPrefix) + "decode"), 2u);
  EXPECT_EQ(count_of(std::string(kPhaseMetricPrefix) + "cache_lookup"), 2u);
  EXPECT_EQ(count_of(std::string(kPhaseMetricPrefix) + "stream"), 2u);
  EXPECT_EQ(count_of(std::string(kPhaseMetricPrefix) + "execute"), 1u);
  EXPECT_EQ(count_of(std::string(kPhaseMetricPrefix) + "cache_insert"), 1u);
  // The computed study populates per-class latency and the cost model.
  bool saw_class_hist = false;
  for (const auto& h : m.hists)
    if (h.name.rfind(kClassMetricPrefix, 0) == 0 && h.data.count > 0) saw_class_hist = true;
  EXPECT_TRUE(saw_class_hist);
  ASSERT_FALSE(m.costs.empty());
  for (const auto& cell : m.costs) {
    EXPECT_FALSE(cell.app_class.empty());
    EXPECT_FALSE(cell.scheme.empty());
    EXPECT_GT(cell.count, 0u);
  }

  // The Prometheus rendering carries the counter families and histograms.
  const std::string prom = render_prometheus(m);
  EXPECT_NE(prom.find("# TYPE hpcsweepd_requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("hpcsweepd_requests_total 2"), std::string::npos);
  EXPECT_NE(prom.find("hpcsweepd_phase_latency_seconds_bucket"), std::string::npos);
  EXPECT_NE(prom.find("{phase=\"execute\""), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  // Dashboard rendering is exercised for crash-freedom and headline counters.
  const std::string dash = render_dashboard(m, nullptr, 2.0);
  EXPECT_NE(dash.find("hpcsweepd"), std::string::npos);
}

TEST(ServeLedger, OneRecordPerRequestPhasesTileAndCostFooterOnDrain) {
  const std::string stem = "/tmp/hps_serve_obs_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++);
  const std::string ledger_path = stem + ".jsonl";
  const std::string trace_path = stem + ".trace.json";
  {
    ServerOptions o = DaemonFixture::small();
    o.serve_ledger_path = ledger_path;
    o.trace_path = trace_path;
    DaemonFixture d(std::move(o));
    Client c = Client::connect_unix(d.path);
    ASSERT_EQ(c.study(tiny_study(81)).summary.status, Status::kOk);   // computed
    ASSERT_TRUE(c.study(tiny_study(81)).summary.cache_hit);           // hit
    ASSERT_EQ(c.study(tiny_study(82)).summary.status, Status::kOk);   // computed
    EXPECT_EQ(c.stats().ledger_records, 3u);
  }  // fixture dtor drains: cost footer + Chrome trace written here

  const obs::ServeLedger led = obs::load_serve_ledger(ledger_path);
  ASSERT_EQ(led.requests.size(), 3u);
  std::set<std::uint64_t> ids;
  for (const obs::ServeRecord& rec : led.requests) {
    EXPECT_EQ(rec.schema, obs::kServeSchemaVersion);
    EXPECT_NE(rec.trace_id, 0u);
    ids.insert(rec.trace_id);
    EXPECT_EQ(rec.status, "ok");
    EXPECT_FALSE(rec.app_classes.empty());
    EXPECT_GT(rec.total_ns, 0);
    // Acceptance bar: per-phase durations tile the request within 1%.
    std::int64_t phase_sum = 0;
    for (const auto& [name, ns] : rec.phases) {
      EXPECT_GE(ns, 0) << name;
      phase_sum += ns;
    }
    EXPECT_NEAR(static_cast<double>(phase_sum), static_cast<double>(rec.total_ns),
                static_cast<double>(rec.total_ns) * 0.01);
  }
  EXPECT_EQ(ids.size(), 3u);  // trace ids are unique per request
  EXPECT_FALSE(led.requests[0].cache_hit);
  EXPECT_TRUE(led.requests[1].cache_hit);
  EXPECT_FALSE(led.requests[2].cache_hit);

  // Drain appended the measured-cost footer for the two computed studies.
  ASSERT_FALSE(led.costs.empty());
  double wall_total = 0;
  for (const obs::CostCell& cell : led.costs) wall_total += cell.wall_seconds;
  EXPECT_GT(wall_total, 0.0);

  // The Chrome trace landed too, with trace-id-tagged request spans.
  std::ifstream tf(trace_path);
  ASSERT_TRUE(tf.good());
  std::string trace((std::istreambuf_iterator<char>(tf)), std::istreambuf_iterator<char>());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(trace.find("\"request\""), std::string::npos);

  std::remove(ledger_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(ServeDaemon, TracingOnOrOffPredictionsAreIdentical) {
  // The trace id must never leak into study results or cache keys: a daemon
  // with full tracing enabled streams the same records (modulo the measured
  // wall_seconds timing field) as one with tracing off.
  const std::string stem = "/tmp/hps_serve_trc_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++);
  Client::StudyReply plain, traced;
  {
    DaemonFixture d(DaemonFixture::small());
    Client c = Client::connect_unix(d.path);
    plain = c.study(tiny_study(91));
  }
  {
    ServerOptions o = DaemonFixture::small();
    o.serve_ledger_path = stem + ".jsonl";
    o.trace_path = stem + ".trace.json";
    DaemonFixture d(std::move(o));
    Client c = Client::connect_unix(d.path);
    traced = c.study(tiny_study(91));
  }
  ASSERT_EQ(plain.summary.status, Status::kOk);
  ASSERT_EQ(traced.summary.status, Status::kOk);
  const auto strip_wall = [](std::string line) {
    const std::size_t at = line.find(",\"wall_seconds\":");
    if (at != std::string::npos) line.resize(at);
    return line;
  };
  ASSERT_EQ(traced.records.size(), plain.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i)
    EXPECT_EQ(strip_wall(traced.records[i]), strip_wall(plain.records[i]));
  std::remove((stem + ".jsonl").c_str());
  std::remove((stem + ".trace.json").c_str());
}

// ---------------------------------------------------------------------------
// Protocol v3: end-to-end deadlines, expiry, graceful degradation

TEST(ServeProtocol, V3DeadlineFallbackAndExpiredRoundTrip) {
  Request r = tiny_study(9);
  r.deadline_ms = 1500;
  EXPECT_EQ(decode_request(encode_request(r)).deadline_ms, 1500u);

  Summary s;
  s.status = Status::kExpired;
  s.mfact_fallback = true;
  s.detail = "degraded=mfact_fallback";
  const Summary gs = decode_summary(encode_summary(s));
  EXPECT_EQ(gs.status, Status::kExpired);
  EXPECT_TRUE(gs.mfact_fallback);
  EXPECT_STREQ(status_name(Status::kExpired), "expired");

  Stats st;
  st.rejected_expired = 1;
  st.shed_queue_delay = 2;
  st.degraded_fallback = 3;
  st.rejected_slow_read = 4;
  st.ledger_write_errors = 5;
  const Stats gt = decode_stats(encode_stats(st));
  EXPECT_EQ(gt.rejected_expired, 1u);
  EXPECT_EQ(gt.shed_queue_delay, 2u);
  EXPECT_EQ(gt.degraded_fallback, 3u);
  EXPECT_EQ(gt.rejected_slow_read, 4u);
  EXPECT_EQ(gt.ledger_write_errors, 5u);
  const std::string j = stats_to_json(st);
  EXPECT_NE(j.find("\"shed_queue_delay\":2"), std::string::npos);
  EXPECT_NE(j.find("\"ledger_write_errors\":5"), std::string::npos);
}

TEST(ServeProtocol, V2PayloadsStillDecodeWithV3FieldsDefaulted) {
  // Reconstruct what a v2 client/daemon would have sent: every v3 field is
  // *appended*, so drop the trailing bytes and patch the version word.
  Request r = tiny_study(5);
  r.deadline_ms = 777;  // v3-only — must vanish from a v2 payload
  std::string v2req = encode_request(r);
  ASSERT_GT(v2req.size(), 8u);
  v2req.resize(v2req.size() - 8);  // trailing u64 deadline_ms
  v2req[0] = 2;
  const Request gr = decode_request(v2req);
  EXPECT_EQ(gr.seed, 5u);
  EXPECT_EQ(gr.deadline_ms, 0u);

  Summary s;
  s.status = Status::kDegraded;
  s.mfact_fallback = true;
  std::string v2sum = encode_summary(s);
  v2sum.resize(v2sum.size() - 1);  // trailing u8 mfact_fallback
  v2sum[0] = 2;
  const Summary gs = decode_summary(v2sum);
  EXPECT_EQ(gs.status, Status::kDegraded);
  EXPECT_FALSE(gs.mfact_fallback);

  // kExpired is a v3 status: valid in v3, out of range in a v2 payload.
  Summary e;
  e.status = Status::kExpired;
  std::string v2exp = encode_summary(e);
  v2exp.resize(v2exp.size() - 1);
  v2exp[0] = 2;
  EXPECT_THROW(decode_summary(v2exp), hps::Error);

  Stats st;
  st.requests = 6;
  st.rejected_expired = 9;  // v3-only
  std::string v2st = encode_stats(st);
  ASSERT_GT(v2st.size(), 11u * 8u);
  v2st.resize(v2st.size() - 11 * 8);  // five v3 + six v4 trailing counters
  v2st[0] = 2;
  const Stats gt = decode_stats(v2st);
  EXPECT_EQ(gt.requests, 6u);
  EXPECT_EQ(gt.rejected_expired, 0u);
  EXPECT_EQ(gt.shed_queue_delay, 0u);
}

// ---------------------------------------------------------------------------
// AdmissionQueue v3: expiry, CoDel shedding, class fairness, close races

TEST(AdmissionQueue, ExpiredEntriesComeOutClassifiedExpired) {
  using Q = AdmissionQueue<int>;
  Q q(4);
  const std::int64_t past = Q::steady_now_ns() - 1;
  const std::int64_t future = Q::steady_now_ns() + 60'000'000'000ll;
  ASSERT_EQ(q.try_push(1, past, 1), Q::Push::kAccepted);
  ASSERT_EQ(q.try_push(2, future, 1), Q::Push::kAccepted);
  ASSERT_EQ(q.try_push(3, /*deadline_ns=*/0, 1), Q::Push::kAccepted);

  int out = 0;
  EXPECT_EQ(q.pop_entry(out), Q::Pop::kExpired);  // still handed to the consumer
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.pop_entry(out), Q::Pop::kItem);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(q.pop_entry(out), Q::Pop::kItem);  // 0 = no deadline, never expires
  EXPECT_EQ(out, 3);
}

TEST(AdmissionQueue, CoDelShedsOnlySustainedOverTargetDelay) {
  using Q = AdmissionQueue<int>;
  Q q(8, ShedPolicy{/*target_ns=*/1'000'000, /*interval_ns=*/5'000'000});
  int out = 0;

  // A fast dequeue stays under target: no shed state accumulates.
  ASSERT_EQ(q.try_push(0), Q::Push::kAccepted);
  EXPECT_EQ(q.pop_entry(out), Q::Pop::kItem);

  // First over-target dequeue only opens the observation window...
  ASSERT_EQ(q.try_push(1), Q::Push::kAccepted);
  ASSERT_EQ(q.try_push(2), Q::Push::kAccepted);
  ASSERT_EQ(q.try_push(3), Q::Push::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(q.pop_entry(out), Q::Pop::kItem);
  EXPECT_EQ(out, 1);
  // ...and once delay has stayed above target past the interval, the queue
  // drops into shedding and keeps shedding over-target dequeues.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(q.pop_entry(out), Q::Pop::kShed);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(q.pop_entry(out), Q::Pop::kShed);
  EXPECT_EQ(out, 3);
  EXPECT_EQ(q.shed_count(), 2u);

  // The first under-target dequeue resets the state: recovery is immediate.
  ASSERT_EQ(q.try_push(4), Q::Push::kAccepted);
  EXPECT_EQ(q.pop_entry(out), Q::Pop::kItem);
  EXPECT_EQ(out, 4);
  EXPECT_EQ(q.shed_count(), 2u);
}

TEST(AdmissionQueue, WeightedRoundRobinKeepsCheapClassFlowing) {
  using Q = AdmissionQueue<int>;
  Q q(8);
  // Four expensive simulations queued first, then two cheap MFACT-planned
  // entries: the cheap class (weight 2) must jump the simulation backlog.
  for (int i = 10; i < 14; ++i) ASSERT_EQ(q.try_push(i, 0, 1), Q::Push::kAccepted);
  ASSERT_EQ(q.try_push(0, 0, 0), Q::Push::kAccepted);
  ASSERT_EQ(q.try_push(1, 0, 0), Q::Push::kAccepted);

  std::vector<int> order;
  int out = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(q.pop_entry(out), Q::Pop::kItem);
    order.push_back(out);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11, 12, 13}));
}

TEST(AdmissionQueue, CloseWhileConsumersBlockedInPopDoesNotHangOrDropWork) {
  using Q = AdmissionQueue<int>;
  Q q(128);
  std::atomic<int> popped{0};
  std::atomic<int> closed_seen{0};
  std::vector<std::thread> consumers;
  for (int t = 0; t < 4; ++t) {
    consumers.emplace_back([&] {
      int out = 0;
      for (;;) {
        const Q::Pop p = q.pop_entry(out);
        if (p == Q::Pop::kClosed) {
          closed_seen.fetch_add(1);
          return;
        }
        popped.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 50; ++i) ASSERT_EQ(q.try_push(i), Q::Push::kAccepted);
  q.close();  // races the consumers mid-pop: nothing may hang or vanish
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(popped.load(), 50);       // admission is a promise, even across close
  EXPECT_EQ(closed_seen.load(), 4);   // every consumer exited cleanly
  EXPECT_EQ(q.try_push(99), Q::Push::kClosed);
}

// ---------------------------------------------------------------------------
// End-to-end deadlines and graceful degradation against a live daemon

/// Installs a fault plan for one scope; tests must never leak a global plan.
struct FaultPlanGuard {
  explicit FaultPlanGuard(const std::string& plan) {
    robust::set_fault_plan(robust::parse_fault_plan(plan));
  }
  ~FaultPlanGuard() { robust::clear_fault_plan(); }
};

TEST(ServeDaemon, DeadlineExpiredByDispatchDelayComesBackExpired) {
  ServerOptions o = DaemonFixture::small();
  o.dispatchers = 1;
  DaemonFixture d(std::move(o));
  // Chaos: every dispatch stalls 300 ms, charged against the deadline like
  // queue wait — a 50 ms end-to-end budget cannot survive it.
  FaultPlanGuard fault("site=serve.dispatch,kind=delay,delay_ms=300");
  Client c = Client::connect_unix(d.path);
  Request req = tiny_study(201);
  req.deadline_ms = 50;
  const auto reply = c.study(req);
  EXPECT_EQ(reply.summary.status, Status::kExpired);
  EXPECT_EQ(reply.records.size(), 0u);
  EXPECT_NE(reply.summary.detail.find("deadline"), std::string::npos);

  Client probe = Client::connect_unix(d.path);
  EXPECT_GE(probe.stats().rejected_expired, 1u);
  // An undeadlined request sails through the same chaos untouched.
  EXPECT_EQ(probe.study(tiny_study(202)).summary.status, Status::kOk);
}

TEST(ServeDaemon, InfeasibleDeadlineDegradesToMfactFallbackUncached) {
  DaemonFixture d(DaemonFixture::small());
  Client warm = Client::connect_unix(d.path);
  // Warm the measured-cost model so the feasibility triage has a prediction.
  Request big = tiny_study(211, /*limit=*/6);
  const auto warmed = warm.study(big);
  ASSERT_EQ(warmed.summary.status, Status::kOk);
  if (warmed.summary.wall_seconds < 0.2)
    GTEST_SKIP() << "study too fast (" << warmed.summary.wall_seconds
                 << " s) to make any deadline infeasible";

  // A deadline a quarter of the measured full-study wall cannot fit the
  // simulation schemes; the daemon must degrade to MFACT-only, tag the
  // reply, and keep the degraded result out of the shared cache.
  Request rushed = tiny_study(212, /*limit=*/6);
  rushed.deadline_ms = static_cast<std::uint64_t>(warmed.summary.wall_seconds * 250);
  const auto first = Client::connect_unix(d.path).study(rushed);
  ASSERT_EQ(first.summary.status, Status::kDegraded);
  EXPECT_TRUE(first.summary.mfact_fallback);
  EXPECT_NE(first.summary.detail.find("mfact_fallback"), std::string::npos);
  EXPECT_GT(first.summary.records, 0u);

  const auto second = Client::connect_unix(d.path).study(rushed);
  ASSERT_EQ(second.summary.status, Status::kDegraded);
  EXPECT_TRUE(second.summary.mfact_fallback);
  EXPECT_FALSE(second.summary.cache_hit);  // degraded results are never cached

  Client probe = Client::connect_unix(d.path);
  EXPECT_GE(probe.stats().degraded_fallback, 2u);
  // The healthy path is untouched: the full study is still served (from
  // cache) byte-identically despite the degraded runs in between.
  const auto again = probe.study(big);
  ASSERT_EQ(again.summary.status, Status::kOk);
  EXPECT_TRUE(again.summary.cache_hit);
  ASSERT_EQ(again.records.size(), warmed.records.size());
  for (std::size_t i = 0; i < again.records.size(); ++i)
    EXPECT_EQ(again.records[i], warmed.records[i]);
}

// ---------------------------------------------------------------------------
// Resilient client: retries, circuit breaker, timeouts

TEST(ResilientClient, BreakerOpensFailsFastThenHalfOpenProbeRecloses) {
  const std::string path = "/tmp/hps_serve_cb_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++) + ".sock";
  ClientPolicy policy;
  policy.timeout_ms = 2000;
  policy.max_retries = 1;
  policy.backoff_ms = 1;
  policy.backoff_max_ms = 2;
  policy.jitter_seed = 7;
  policy.breaker_failures = 2;
  policy.breaker_cooldown_ms = 200;
  ResilientClient rc = ResilientClient::unix_socket(path, policy);

  // No daemon: first study burns its retry budget (two connect failures),
  // which trips the breaker.
  EXPECT_THROW(rc.study(tiny_study(221)), hps::Error);
  EXPECT_EQ(rc.last_attempts(), 2);
  EXPECT_EQ(rc.breaker_state(), ResilientClient::Breaker::kOpen);

  // While open the client fails fast without touching the socket.
  EXPECT_THROW(rc.study(tiny_study(221)), CircuitOpenError);

  // After the cooldown one half-open probe goes through; the daemon is
  // still down, so the probe fails immediately (no retry burn) and re-opens.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(rc.breaker_state(), ResilientClient::Breaker::kHalfOpen);
  EXPECT_THROW(rc.study(tiny_study(221)), hps::Error);
  EXPECT_EQ(rc.last_attempts(), 1);
  EXPECT_EQ(rc.breaker_state(), ResilientClient::Breaker::kOpen);

  // Bring a real daemon up on the same path: the next half-open probe
  // succeeds and re-closes the breaker.
  ServerOptions o = DaemonFixture::small();
  o.socket_path = path;
  o.install_signal_guard = false;
  Server server(std::move(o));
  std::thread runner([&] { server.run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const auto reply = rc.study(tiny_study(221));
  EXPECT_EQ(reply.summary.status, Status::kOk);
  EXPECT_EQ(rc.last_attempts(), 1);
  EXPECT_EQ(rc.breaker_state(), ResilientClient::Breaker::kClosed);
  server.shutdown();
  runner.join();
  ::unlink(path.c_str());
}

TEST(ResilientClient, SocketTimeoutSurfacesAsTimeoutErrorAndIsNeverRetried) {
  // A listener that accepts connections (via the kernel backlog) but never
  // replies: the documented worst case a socket deadline exists for.
  const std::string path = "/tmp/hps_serve_stall_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++) + ".sock";
  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 8), 0);

  ClientPolicy policy;
  policy.timeout_ms = 50;
  policy.max_retries = 3;
  policy.backoff_ms = 1;
  ResilientClient rc = ResilientClient::unix_socket(path, policy);
  EXPECT_THROW(rc.study(tiny_study(231)), TimeoutError);
  // The request reached the wire: retrying could double-execute it, so the
  // whole retry budget must stay unspent.
  EXPECT_EQ(rc.last_attempts(), 1);

  ::close(lfd);
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Slowloris guard

TEST(ServeDaemon, PartialFrameHeldPastTheCapIsRejected) {
  ServerOptions o = DaemonFixture::small();
  o.slow_read_timeout_ms = 100;
  DaemonFixture d(std::move(o));

  // A well-behaved client on the same daemon is unaffected before and after.
  Client ok = Client::connect_unix(d.path);
  ASSERT_EQ(ok.study(tiny_study(241)).summary.status, Status::kOk);

  // Dribble 4 bytes of a valid request frame and then stall.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, d.path.c_str(), sizeof addr.sun_path - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const std::string frame =
      ipc::encode_frame({ipc::MsgType::kRequest, encode_request(tiny_study(242))});
  ASSERT_EQ(::send(fd, frame.data(), 4, 0), 4);

  // The daemon must reject the connection with an explicit slow-read error
  // (not silently hold it): read the reject frame back.
  ipc::Message m;
  ASSERT_EQ(ipc::read_message(fd, m), ipc::ReadStatus::kMessage);
  EXPECT_EQ(m.type, ipc::MsgType::kReject);
  const Summary s = decode_summary(m.payload);
  EXPECT_EQ(s.status, Status::kBadRequest);
  EXPECT_NE(s.detail.find("slow read"), std::string::npos);
  ::close(fd);

  Client probe = Client::connect_unix(d.path);
  EXPECT_EQ(probe.stats().rejected_slow_read, 1u);
  EXPECT_EQ(probe.study(tiny_study(243)).summary.status, Status::kOk);
}

// ---------------------------------------------------------------------------
// Serve-ledger hardening and the new record fields

TEST(ServeLedger, WriterDisablesAfterEnospcAndCountsEveryLostLine) {
  if (!std::ofstream("/dev/full").is_open()) GTEST_SKIP() << "/dev/full unavailable";
  obs::ServeLedgerWriter w("/dev/full");
  obs::ServeRecord rec;
  rec.trace_id = 1;
  w.append(rec);  // first flush hits ENOSPC: latch + warn once
  EXPECT_EQ(w.write_errors(), 1u);
  EXPECT_EQ(w.records_written(), 0u);
  w.append(rec);  // disabled: counted as lost, not attempted
  w.append(rec);
  EXPECT_EQ(w.write_errors(), 3u);
  EXPECT_EQ(w.records_written(), 0u);
}

TEST(ServeLedger, FallbackAndDeadlineFieldsRoundTripThroughJsonl) {
  obs::ServeRecord rec;
  rec.trace_id = 0xabc;
  rec.status = "degraded";
  rec.mfact_fallback = true;
  rec.deadline_ms = 1234;
  const std::string line = obs::to_json_line(rec);
  EXPECT_NE(line.find("\"mfact_fallback\":true"), std::string::npos);
  EXPECT_NE(line.find("\"deadline_ms\":1234"), std::string::npos);

  const std::string path = "/tmp/hps_serve_led_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++) + ".jsonl";
  {
    obs::ServeLedgerWriter w(path);
    w.append(rec);
    EXPECT_EQ(w.records_written(), 1u);
    EXPECT_EQ(w.write_errors(), 0u);
  }
  const obs::ServeLedger led = obs::load_serve_ledger(path);
  ASSERT_EQ(led.requests.size(), 1u);
  EXPECT_TRUE(led.requests[0].mfact_fallback);
  EXPECT_EQ(led.requests[0].deadline_ms, 1234u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Serve fault sites: chaos hooks parse, fire, and never take the daemon down

TEST(ServeFault, ServeSitesParseAndName) {
  const auto plan = robust::parse_fault_plan(
      "site=serve.cache-insert,kind=throw;site=serve.ledger-append;"
      "site=serve.dispatch,kind=delay,delay_ms=5");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].site, robust::FaultSite::kServeCacheInsert);
  EXPECT_EQ(plan.specs[1].site, robust::FaultSite::kServeLedgerAppend);
  EXPECT_EQ(plan.specs[2].site, robust::FaultSite::kServeDispatch);
  EXPECT_STREQ(robust::fault_site_name(robust::FaultSite::kServeCacheInsert),
               "serve.cache-insert");
  EXPECT_STREQ(robust::fault_site_name(robust::FaultSite::kServeLedgerAppend),
               "serve.ledger-append");
  EXPECT_STREQ(robust::fault_site_name(robust::FaultSite::kServeDispatch),
               "serve.dispatch");
}

TEST(ServeFault, CacheInsertFailureCostsOnlyTheFutureHit) {
  DaemonFixture d(DaemonFixture::small());
  FaultPlanGuard fault("site=serve.cache-insert,kind=throw");
  Client c = Client::connect_unix(d.path);
  const auto first = c.study(tiny_study(251));
  ASSERT_EQ(first.summary.status, Status::kOk);  // the study itself succeeded
  const auto second = c.study(tiny_study(251));
  ASSERT_EQ(second.summary.status, Status::kOk);
  EXPECT_FALSE(second.summary.cache_hit);  // insert failed: recomputed, not lost
}

TEST(ServeFault, LedgerAppendFailureIsCountedNotFatal) {
  const std::string path = "/tmp/hps_serve_lf_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++) + ".jsonl";
  ServerOptions o = DaemonFixture::small();
  o.serve_ledger_path = path;
  DaemonFixture d(std::move(o));
  FaultPlanGuard fault("site=serve.ledger-append,kind=throw");
  Client c = Client::connect_unix(d.path);
  ASSERT_EQ(c.study(tiny_study(261)).summary.status, Status::kOk);
  const Stats st = c.stats();
  EXPECT_GE(st.ledger_write_errors, 1u);
  EXPECT_EQ(st.ledger_records, 0u);  // the lost line is counted, not half-written
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Durable cache: spill codec, recovery, quarantine, scrubbing

std::string fresh_cache_dir() {
  const std::string dir = "/tmp/hps_serve_spill_" + std::to_string(::getpid()) + "_" +
                          std::to_string(DaemonFixture::counter()++);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::shared_ptr<CachedResult> durable_result(const std::string& tag,
                                             bool fallback = false) {
  auto r = std::make_shared<CachedResult>();
  r->status = fallback ? Status::kDegraded : Status::kOk;
  r->degraded = fallback ? 3u : 0u;
  r->wall_seconds = 1.5 + static_cast<double>(tag.size());
  r->app_classes = "latency-bound,bandwidth-bound";
  r->mfact_fallback = fallback;
  r->records = {"{\"trace\":\"" + tag + "\"}", "{\"trace\":\"" + tag + tag + "\"}"};
  return r;
}

TEST(SpillCodec, RecordRoundTripPreservesEveryField) {
  auto r = durable_result("alpha");
  r->status = Status::kDegraded;
  r->degraded = 2;
  const SpillRecord got = decode_spill_record(encode_spill_record(42, *r));
  EXPECT_EQ(got.key, 42u);
  EXPECT_EQ(got.result.status, r->status);
  EXPECT_EQ(got.result.degraded, r->degraded);
  EXPECT_DOUBLE_EQ(got.result.wall_seconds, r->wall_seconds);
  EXPECT_EQ(got.result.app_classes, r->app_classes);
  EXPECT_EQ(got.result.mfact_fallback, r->mfact_fallback);
  EXPECT_EQ(got.result.records, r->records);
}

TEST(SpillCodec, DecodeRejectsTruncationTrailingBytesAndBadSchema) {
  const std::string ok = encode_spill_record(7, *durable_result("x"));
  EXPECT_THROW(decode_spill_record(ok.substr(0, ok.size() - 2)), hps::Error);
  EXPECT_THROW(decode_spill_record(ok + "zz"), hps::Error);
  EXPECT_THROW(decode_spill_record(""), hps::Error);
  std::string bad_schema = ok;
  bad_schema[0] = static_cast<char>(kSpillRecordSchema + 1);
  EXPECT_THROW(decode_spill_record(bad_schema), hps::Error);
}

TEST(SpillFile, WriterThenScanRoundTripsRecords) {
  const std::string dir = fresh_cache_dir();
  const std::string path = spill_path(dir);
  {
    SpillWriter w;
    w.open(path, /*fsync_each=*/false);
    w.append(1, *durable_result("a"));
    w.append(2, *durable_result("bb"));
    EXPECT_GT(w.file_bytes(), 8u);
    w.close();
  }
  const SpillScan scan = scan_spill_file(path);
  EXPECT_TRUE(scan.existed);
  EXPECT_TRUE(scan.header_ok);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].key, 1u);
  EXPECT_EQ(scan.records[1].key, 2u);
  EXPECT_EQ(scan.records[1].result.records, durable_result("bb")->records);
  EXPECT_TRUE(scan.quarantine.empty());
  EXPECT_EQ(scan.torn_bytes, 0u);

  // Reopening for append continues the same file, no second header.
  {
    SpillWriter w;
    w.open(path, false);
    w.append(3, *durable_result("c"));
  }
  EXPECT_EQ(scan_spill_file(path).records.size(), 3u);
  std::filesystem::remove_all(dir);
}

TEST(DurableCache, InsertSpillsAndRecoverIsByteIdentical) {
  const std::string dir = fresh_cache_dir();
  auto a = durable_result("first");
  auto b = durable_result("second");
  {
    ResultCache cache(1 << 20, {dir, false});
    EXPECT_EQ(cache.recover().recovered, 0u);  // fresh dir: nothing yet
    cache.insert(100, a);
    cache.insert(200, b);
    const auto c = cache.counters();
    EXPECT_EQ(c.spilled, 2u);
    EXPECT_EQ(c.spill_errors, 0u);
  }
  ResultCache warm(1 << 20, {dir, false});
  const ResultCache::RecoveryStats rs = warm.recover();
  EXPECT_EQ(rs.recovered, 2u);
  EXPECT_EQ(rs.quarantined, 0u);
  EXPECT_EQ(rs.torn_bytes, 0u);
  const auto ha = warm.lookup(100);
  const auto hb = warm.lookup(200);
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(ha->records, a->records);  // byte-identical replay after restart
  EXPECT_EQ(hb->records, b->records);
  EXPECT_EQ(ha->app_classes, a->app_classes);
  EXPECT_DOUBLE_EQ(ha->wall_seconds, a->wall_seconds);
  EXPECT_EQ(warm.counters().recovered, 2u);
  std::filesystem::remove_all(dir);
}

TEST(DurableCache, MfactFallbackResultsAreNeverSpilled) {
  const std::string dir = fresh_cache_dir();
  {
    ResultCache cache(1 << 20, {dir, false});
    cache.recover();
    cache.insert(1, durable_result("real"));
    cache.insert(2, durable_result("degraded", /*fallback=*/true));
    EXPECT_EQ(cache.counters().spilled, 1u);
  }
  ResultCache warm(1 << 20, {dir, false});
  EXPECT_EQ(warm.recover().recovered, 1u);
  EXPECT_NE(warm.lookup(1), nullptr);
  EXPECT_EQ(warm.lookup(2), nullptr);  // the fallback stayed memory-only
  std::filesystem::remove_all(dir);
}

TEST(DurableCache, CorruptMidFileRecordIsQuarantinedNeighborsSurvive) {
  const std::string dir = fresh_cache_dir();
  const std::string p1 = encode_spill_record(1, *durable_result("keep1"));
  const std::string p2 = encode_spill_record(2, *durable_result("smash"));
  const std::string p3 = encode_spill_record(3, *durable_result("keep3"));
  write_spill_file(spill_path(dir), {{1, *durable_result("keep1")},
                                     {2, *durable_result("smash")},
                                     {3, *durable_result("keep3")}});
  // Flip one payload byte inside record 2: header(8) + frame1(8+p1) + frame
  // header(8) puts us at the start of p2; aim at its middle.
  const std::size_t at = 8 + (8 + p1.size()) + 8 + p2.size() / 2;
  {
    std::fstream f(spill_path(dir), std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(at));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(static_cast<std::streamoff>(at));
    f.write(&c, 1);
  }
  ResultCache warm(1 << 20, {dir, false});
  const auto rs = warm.recover();
  EXPECT_EQ(rs.recovered, 2u);
  EXPECT_EQ(rs.quarantined, 1u);
  EXPECT_NE(warm.lookup(1), nullptr);
  EXPECT_EQ(warm.lookup(2), nullptr);  // quarantined, never served corrupt
  EXPECT_NE(warm.lookup(3), nullptr);  // the scan resynchronized past the rot
  EXPECT_GT(std::filesystem::file_size(quarantine_path(dir)), 0u);
  // Recovery left a clean compacted file behind.
  const SpillScan rescan = scan_spill_file(spill_path(dir));
  EXPECT_EQ(rescan.records.size(), 2u);
  EXPECT_TRUE(rescan.quarantine.empty());
  std::filesystem::remove_all(dir);
}

TEST(DurableCache, TornTailIsTruncatedNotQuarantined) {
  const std::string dir = fresh_cache_dir();
  write_spill_file(spill_path(dir), {{1, *durable_result("whole")}});
  {
    // A crash mid-append leaves a partial frame: fake one.
    std::ofstream f(spill_path(dir), std::ios::app | std::ios::binary);
    f.write("\x40\x00\x00\x00\x99\x99", 6);
  }
  ResultCache warm(1 << 20, {dir, false});
  const auto rs = warm.recover();
  EXPECT_EQ(rs.recovered, 1u);
  EXPECT_EQ(rs.quarantined, 0u);  // a torn tail is expected, not forensic
  EXPECT_GT(rs.torn_bytes, 0u);
  EXPECT_FALSE(std::filesystem::exists(quarantine_path(dir)));
  EXPECT_NE(warm.lookup(1), nullptr);
  std::filesystem::remove_all(dir);
}

// The satellite contract: flip EVERY byte of a spill file, one at a time, and
// recovery must (a) never crash and (b) leave each original record either
// recovered byte-identical or absent-and-accounted (quarantined, or part of a
// torn/condemned region) — never silently served with wrong bytes.
TEST(DurableCache, ExhaustiveSingleByteCorruptionSweep) {
  const std::string dir = fresh_cache_dir();
  const auto r1 = durable_result("s1");
  const auto r2 = durable_result("s2");
  write_spill_file(spill_path(dir), {{11, *r1}, {22, *r2}});
  std::string pristine;
  {
    std::ifstream f(spill_path(dir), std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(pristine.size(), 16u);

  for (std::size_t i = 0; i < pristine.size(); ++i) {
    std::string mutated = pristine;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    {
      std::ofstream f(spill_path(dir), std::ios::binary | std::ios::trunc);
      f.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    std::filesystem::remove(quarantine_path(dir));

    ResultCache warm(1 << 20, {dir, false});
    ResultCache::RecoveryStats rs{};
    ASSERT_NO_THROW(rs = warm.recover()) << "byte " << i;

    const auto h1 = warm.lookup(11);
    const auto h2 = warm.lookup(22);
    if (h1 != nullptr) {
      EXPECT_EQ(h1->records, r1->records) << "byte " << i;
      EXPECT_DOUBLE_EQ(h1->wall_seconds, r1->wall_seconds) << "byte " << i;
    }
    if (h2 != nullptr) {
      EXPECT_EQ(h2->records, r2->records) << "byte " << i;
      EXPECT_DOUBLE_EQ(h2->wall_seconds, r2->wall_seconds) << "byte " << i;
    }
    const std::uint64_t missing = (h1 == nullptr ? 1u : 0u) + (h2 == nullptr ? 1u : 0u);
    if (missing > 0) {
      // No third outcome: a lost record must be accounted for as damage.
      EXPECT_TRUE(rs.quarantined > 0 || rs.torn_bytes > 0)
          << "byte " << i << " lost " << missing << " record(s) without accounting";
    }
    EXPECT_EQ(rs.recovered, 2u - missing) << "byte " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(DurableCache, ScrubQuarantinesRotAndRewritesFromMemory) {
  const std::string dir = fresh_cache_dir();
  ResultCache cache(1 << 20, {dir, false});
  cache.recover();
  cache.insert(1, durable_result("rotme"));
  cache.insert(2, durable_result("fine"));

  // Rot one byte on disk behind the cache's back (bit flip, cosmic ray...).
  const std::uint64_t size = std::filesystem::file_size(spill_path(dir));
  {
    std::fstream f(spill_path(dir), std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff at = static_cast<std::streamoff>(size / 2);
    f.seekg(at);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x01);
    f.seekp(at);
    f.write(&c, 1);
  }

  EXPECT_GE(cache.scrub_once(), 1u);
  const auto c = cache.counters();
  EXPECT_EQ(c.scrub_passes, 1u);
  EXPECT_GE(c.scrub_corrupt, 1u);
  EXPECT_GE(c.quarantined, 1u);
  EXPECT_GT(std::filesystem::file_size(quarantine_path(dir)), 0u);

  // Memory was authoritative: the rewritten file holds both entries intact.
  const SpillScan rescan = scan_spill_file(spill_path(dir));
  EXPECT_TRUE(rescan.header_ok);
  EXPECT_EQ(rescan.records.size(), 2u);
  EXPECT_TRUE(rescan.quarantine.empty());
  // A second pass over the repaired file finds nothing.
  EXPECT_EQ(cache.scrub_once(), 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Durability fault sites

TEST(ServeFault, DurabilitySitesParseAndName) {
  const auto plan = robust::parse_fault_plan(
      "site=serve.cache-spill,kind=throw;site=serve.cache-recover;site=serve.scrub");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].site, robust::FaultSite::kServeCacheSpill);
  EXPECT_EQ(plan.specs[1].site, robust::FaultSite::kServeCacheRecover);
  EXPECT_EQ(plan.specs[2].site, robust::FaultSite::kServeScrub);
  EXPECT_STREQ(robust::fault_site_name(robust::FaultSite::kServeCacheSpill),
               "serve.cache-spill");
  EXPECT_STREQ(robust::fault_site_name(robust::FaultSite::kServeCacheRecover),
               "serve.cache-recover");
  EXPECT_STREQ(robust::fault_site_name(robust::FaultSite::kServeScrub), "serve.scrub");
}

TEST(ServeFault, SpillFaultLosesDurabilityNotTheInMemoryEntry) {
  const std::string dir = fresh_cache_dir();
  {
    ResultCache cache(1 << 20, {dir, false});
    cache.recover();
    FaultPlanGuard fault("site=serve.cache-spill,kind=throw");
    cache.insert(1, durable_result("volatile"));
    EXPECT_NE(cache.lookup(1), nullptr);  // the in-memory insert held
    const auto c = cache.counters();
    EXPECT_EQ(c.spilled, 0u);
    EXPECT_EQ(c.spill_errors, 1u);
  }
  ResultCache warm(1 << 20, {dir, false});
  EXPECT_EQ(warm.recover().recovered, 0u);  // the append was the loss
  std::filesystem::remove_all(dir);
}

TEST(ServeFault, RecoverFaultQuarantinesTheRecordItHit) {
  const std::string dir = fresh_cache_dir();
  write_spill_file(spill_path(dir), {{1, *durable_result("a")}, {2, *durable_result("b")}});
  ResultCache warm(1 << 20, {dir, false});
  FaultPlanGuard fault("site=serve.cache-recover,kind=throw");
  const auto rs = warm.recover();
  EXPECT_EQ(rs.recovered, 0u);
  EXPECT_EQ(rs.quarantined, 2u);  // every record hit the injected validator fault
  EXPECT_GT(std::filesystem::file_size(quarantine_path(dir)), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ServeFault, ScrubFaultAbortsThePassAndCountsNothing) {
  const std::string dir = fresh_cache_dir();
  ResultCache cache(1 << 20, {dir, false});
  cache.recover();
  cache.insert(1, durable_result("x"));
  FaultPlanGuard fault("site=serve.scrub,kind=throw");
  // The cache propagates (the Server's scrubber thread catches and logs).
  EXPECT_THROW(cache.scrub_once(), hps::Error);
  EXPECT_EQ(cache.counters().scrub_passes, 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Warm restart at the daemon level

TEST(ServeDaemon, RestartOnSameCacheDirComesBackWarmByteIdentical) {
  const std::string dir = fresh_cache_dir();
  Client::StudyReply first;
  {
    ServerOptions o = DaemonFixture::small();
    o.cache_dir = dir;
    DaemonFixture d(std::move(o));
    Client c = Client::connect_unix(d.path);
    first = c.study(tiny_study(271));
    ASSERT_EQ(first.summary.status, Status::kOk);
    const Stats st = c.stats();
    EXPECT_GE(st.cache_spilled, 1u);
    EXPECT_EQ(st.cache_recovered, 0u);
  }  // daemon 1 gone

  ServerOptions o = DaemonFixture::small();
  o.cache_dir = dir;
  DaemonFixture d2(std::move(o));
  Client c = Client::connect_unix(d2.path);
  const Stats st = c.stats();
  EXPECT_GE(st.cache_recovered, 1u);
  EXPECT_EQ(st.cache_quarantined, 0u);

  const auto again = c.study(tiny_study(271));
  ASSERT_EQ(again.summary.status, Status::kOk);
  EXPECT_TRUE(again.summary.cache_hit);       // never recomputed
  EXPECT_EQ(again.records, first.records);    // byte-identical across restart
  EXPECT_EQ(c.stats().studies_run, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ServeDaemon, ScrubberThreadRunsAgainstALiveDaemon) {
  const std::string dir = fresh_cache_dir();
  ServerOptions o = DaemonFixture::small();
  o.cache_dir = dir;
  o.scrub_interval_ms = 20;
  DaemonFixture d(std::move(o));
  Client c = Client::connect_unix(d.path);
  ASSERT_EQ(c.study(tiny_study(281)).summary.status, Status::kOk);
  // A few scrub intervals: passes accumulate, nothing is corrupt.
  Stats st{};
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    st = c.stats();
    if (st.cache_scrub_passes >= 2) break;
  }
  EXPECT_GE(st.cache_scrub_passes, 2u);
  EXPECT_EQ(st.cache_scrub_corrupt, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ServeListener, LockFileOutlivesTheDaemonAndRestartSucceeds) {
  const std::string path = "/tmp/hps_serve_lock_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++) + ".sock";
  ::unlink(path.c_str());
  for (int round = 0; round < 2; ++round) {
    ServerOptions o = DaemonFixture::small();
    o.socket_path = path;
    o.install_signal_guard = false;
    Server server(std::move(o));
    std::thread runner([&] { server.run(); });
    Client c = Client::connect_unix(path);
    EXPECT_TRUE(c.ping());
    EXPECT_TRUE(std::filesystem::exists(path + ".lock"));
    server.shutdown();
    runner.join();
    // The lock file deliberately survives a shutdown (unlinking it would
    // reopen the very race it guards); the kernel released the flock when
    // the holder went away, so round 2 rebinds the same path cleanly.
    EXPECT_TRUE(std::filesystem::exists(path + ".lock"));
  }
  ::unlink((path + ".lock").c_str());
  robust::clear_interrupt();
}

// ---------------------------------------------------------------------------
// Protocol v4: durability counters stay backward compatible

TEST(ServeProtocol, StatsV4FieldsRoundTrip) {
  Stats st;
  st.requests = 3;
  st.cache_spilled = 11;
  st.cache_recovered = 22;
  st.cache_quarantined = 33;
  st.cache_recovery_ms = 44;
  st.cache_scrub_passes = 55;
  st.cache_scrub_corrupt = 66;
  const Stats gt = decode_stats(encode_stats(st));
  EXPECT_EQ(gt.cache_spilled, 11u);
  EXPECT_EQ(gt.cache_recovered, 22u);
  EXPECT_EQ(gt.cache_quarantined, 33u);
  EXPECT_EQ(gt.cache_recovery_ms, 44u);
  EXPECT_EQ(gt.cache_scrub_passes, 55u);
  EXPECT_EQ(gt.cache_scrub_corrupt, 66u);
  const std::string j = stats_to_json(st);
  EXPECT_NE(j.find("\"cache_recovered\":22"), std::string::npos);
  EXPECT_NE(j.find("\"cache_scrub_corrupt\":66"), std::string::npos);
}

TEST(ServeProtocol, V3StatsPayloadStillDecodesWithV4FieldsDefaulted) {
  Stats st;
  st.requests = 9;
  st.cache_spilled = 123;  // v4-only — must vanish from a v3 payload
  std::string v3 = encode_stats(st);
  ASSERT_GT(v3.size(), 6u * 8u);
  v3.resize(v3.size() - 6 * 8);  // drop the six appended v4 u64s
  v3[0] = 3;                     // little-endian u32 version: 4 -> 3
  const Stats gt = decode_stats(v3);
  EXPECT_EQ(gt.requests, 9u);
  EXPECT_EQ(gt.cache_spilled, 0u);
  EXPECT_EQ(gt.cache_recovery_ms, 0u);
  // A v3 payload that kept the v4 tail is garbage, not half-valid.
  std::string v3_trailing = encode_stats(st);
  v3_trailing[0] = 3;
  EXPECT_THROW(decode_stats(v3_trailing), hps::Error);
}

// ---------------------------------------------------------------------------
// Client failover across endpoints

TEST(ResilientClient, FailsOverToTheNextEndpointOnConnectFailure) {
  const std::string dead = "/tmp/hps_serve_dead_" + std::to_string(::getpid()) + ".sock";
  ::unlink(dead.c_str());
  DaemonFixture d(DaemonFixture::small());

  ClientPolicy policy;
  policy.max_retries = 3;
  policy.backoff_ms = 1;
  policy.backoff_max_ms = 2;
  policy.breaker_failures = 5;
  ResilientClient rc = ResilientClient::endpoints(
      {{false, dead, 0}, {false, d.path, 0}}, policy);
  EXPECT_EQ(rc.endpoint_count(), 2u);

  const auto reply = rc.study(tiny_study(291));
  EXPECT_EQ(reply.summary.status, Status::kOk);
  EXPECT_EQ(rc.failovers(), 1);

  // Success sticks: the next exchange goes straight to the live endpoint.
  const auto again = rc.study(tiny_study(291));
  EXPECT_EQ(again.summary.status, Status::kOk);
  EXPECT_TRUE(again.summary.cache_hit);
  EXPECT_EQ(rc.last_attempts(), 1);
  EXPECT_EQ(rc.failovers(), 1);
}

TEST(ResilientClient, CircuitOpenOnAllEndpointsFailsFast) {
  const std::string d1 = "/tmp/hps_serve_d1_" + std::to_string(::getpid()) + ".sock";
  const std::string d2 = "/tmp/hps_serve_d2_" + std::to_string(::getpid()) + ".sock";
  ::unlink(d1.c_str());
  ::unlink(d2.c_str());
  ClientPolicy policy;
  policy.max_retries = 3;
  policy.backoff_ms = 1;
  policy.backoff_max_ms = 2;
  policy.breaker_failures = 1;  // one failure opens each endpoint's breaker
  policy.breaker_cooldown_ms = 60000;
  ResilientClient rc = ResilientClient::endpoints({{false, d1, 0}, {false, d2, 0}}, policy);
  EXPECT_THROW(rc.study(tiny_study(301)), hps::Error);
  EXPECT_THROW(rc.study(tiny_study(301)), CircuitOpenError);
}

/// Minimal hand-rolled endpoint: accepts connections and answers every
/// request with a canned terminal frame — a kOk summary (a stand-in healthy
/// peer) or a kDraining reject (a daemon frozen mid-rolling-restart, which a
/// real Server only is for one racy poll tick).
struct FakeEndpoint {
  std::string path;
  int lfd = -1;
  std::thread t;
  std::atomic<int> served{0};

  explicit FakeEndpoint(Status reply_status = Status::kOk) {
    path = "/tmp/hps_serve_fake_" + std::to_string(::getpid()) + "_" +
           std::to_string(DaemonFixture::counter()++) + ".sock";
    ::unlink(path.c_str());
    lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(lfd, 8) != 0)
      throw hps::Error("fake endpoint setup failed");
    t = std::thread([this, reply_status] {
      for (;;) {
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) return;  // listener closed: test over
        ipc::Message m;
        if (ipc::read_message(fd, m) == ipc::ReadStatus::kMessage) {
          Summary s;
          s.status = reply_status;
          s.detail = reply_status == Status::kOk ? "served by the fake peer"
                                                 : "daemon is draining";
          const ipc::MsgType type = reply_status == Status::kOk
                                        ? ipc::MsgType::kSummary
                                        : ipc::MsgType::kReject;
          ipc::write_frame(fd, {type, encode_summary(s)});
          served.fetch_add(1);
        }
        ::close(fd);
      }
    });
  }
  ~FakeEndpoint() {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
    if (t.joinable()) t.join();
    ::unlink(path.c_str());
  }
};

TEST(ResilientClient, DrainingRejectFailsOverToAHealthyPeer) {
  FakeEndpoint draining(Status::kDraining);
  DaemonFixture d(DaemonFixture::small());

  ClientPolicy policy;
  policy.max_retries = 3;
  policy.backoff_ms = 1;
  policy.backoff_max_ms = 2;
  ResilientClient rc = ResilientClient::endpoints(
      {{false, draining.path, 0}, {false, d.path, 0}}, policy);

  // The preferred endpoint rejects with kDraining: never-admitted work, so
  // the client retries for free on the next endpoint — no backoff sleep, no
  // resend risk — and the real daemon answers.
  const auto reply = rc.study(tiny_study(311));
  EXPECT_EQ(reply.summary.status, Status::kOk);
  EXPECT_GT(reply.records.size(), 0u);
  EXPECT_EQ(rc.draining_retries(), 1);
  EXPECT_EQ(rc.failovers(), 1);
  EXPECT_EQ(draining.served.load(), 1);
}

// ---------------------------------------------------------------------------
// Serve-ledger re-probe after transient failure

TEST(ServeLedger, ReprobeReenablesAppendsAfterTransientFailure) {
  const std::string path = "/tmp/hps_serve_reprobe_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++) + ".jsonl";
  std::remove(path.c_str());
  obs::ServeLedgerWriter w(path);
  w.set_reprobe_policy(/*records=*/2, /*seconds=*/0);  // count-triggered only
  w.force_failure_for_testing();

  obs::ServeRecord rec;
  rec.trace_id = 7;
  w.append(rec);  // lost: latched, 1 since probe
  w.append(rec);  // lost: 2 since probe — next append is the re-probe
  EXPECT_EQ(w.write_errors(), 2u);
  EXPECT_EQ(w.records_written(), 0u);

  w.append(rec);  // re-probe: the file is healthy, so this line lands
  EXPECT_EQ(w.write_errors(), 2u);  // monotonic: nothing un-counted
  EXPECT_EQ(w.records_written(), 1u);
  w.append(rec);  // healed: normal appends resume
  EXPECT_EQ(w.records_written(), 2u);

  EXPECT_EQ(obs::load_serve_ledger(path).requests.size(), 2u);
  std::remove(path.c_str());
}

TEST(ServeLedger, ReprobeStaysLatchedWhileTheDiskIsStillFull) {
  if (!std::ofstream("/dev/full").is_open()) GTEST_SKIP() << "/dev/full unavailable";
  obs::ServeLedgerWriter w("/dev/full");
  w.set_reprobe_policy(/*records=*/1, /*seconds=*/0);  // re-probe every append
  obs::ServeRecord rec;
  rec.trace_id = 9;
  w.append(rec);  // first failure latches
  for (int i = 0; i < 3; ++i) w.append(rec);  // each re-probe reopens, still ENOSPC
  EXPECT_EQ(w.write_errors(), 4u);  // strictly monotonic, every line counted
  EXPECT_EQ(w.records_written(), 0u);
}

TEST(ServeLedger, ZeroZeroPolicyRestoresThePermanentLatch) {
  const std::string path = "/tmp/hps_serve_latch_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++) + ".jsonl";
  std::remove(path.c_str());
  obs::ServeLedgerWriter w(path);
  w.set_reprobe_policy(0, 0);
  w.force_failure_for_testing();
  obs::ServeRecord rec;
  for (int i = 0; i < 5; ++i) w.append(rec);
  EXPECT_EQ(w.write_errors(), 5u);  // never re-probes, even on a healthy file
  EXPECT_EQ(w.records_written(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hps::serve
