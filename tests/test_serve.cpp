// hpcsweepd serving stack: protocol codecs, admission queue, result cache,
// and a live daemon exercised over real Unix sockets — framing round-trips,
// poisoned/oversized request rejection, shared-cache coherence across
// concurrent clients, single-flight coalescing, queue-full backpressure, and
// drain on SIGTERM.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/serve_ledger.hpp"
#include "robust/interrupt.hpp"
#include "robust/ipc.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"

namespace hps::serve {
namespace {

namespace ipc = hps::robust::ipc;

// ---------------------------------------------------------------------------
// Protocol codecs

TEST(ServeProtocol, RequestRoundTripPreservesEveryField) {
  Request r;
  r.kind = Request::Kind::kStudy;
  r.seed = 0xdeadbeefcafe1234ull;
  r.duration_scale = 0.375;
  r.limit = 17;
  r.force_recompute = true;
  r.wall_deadline_s = 12.5;
  r.max_des_events = 9876543210ull;
  r.virtual_horizon_ns = 1234567890123ll;

  const Request got = decode_request(encode_request(r));
  EXPECT_EQ(got.kind, r.kind);
  EXPECT_EQ(got.seed, r.seed);
  EXPECT_DOUBLE_EQ(got.duration_scale, r.duration_scale);
  EXPECT_EQ(got.limit, r.limit);
  EXPECT_EQ(got.force_recompute, r.force_recompute);
  EXPECT_DOUBLE_EQ(got.wall_deadline_s, r.wall_deadline_s);
  EXPECT_EQ(got.max_des_events, r.max_des_events);
  EXPECT_EQ(got.virtual_horizon_ns, r.virtual_horizon_ns);
}

TEST(ServeProtocol, SummaryAndStatsRoundTrip) {
  Summary s;
  s.status = Status::kDegraded;
  s.cache_hit = true;
  s.records = 42;
  s.degraded = 3;
  s.wall_seconds = 1.25;
  s.detail = "three traces hit the wall deadline";
  const Summary gs = decode_summary(encode_summary(s));
  EXPECT_EQ(gs.status, s.status);
  EXPECT_EQ(gs.cache_hit, s.cache_hit);
  EXPECT_EQ(gs.records, s.records);
  EXPECT_EQ(gs.degraded, s.degraded);
  EXPECT_DOUBLE_EQ(gs.wall_seconds, s.wall_seconds);
  EXPECT_EQ(gs.detail, s.detail);

  Stats st;
  st.requests = 10;
  st.studies_run = 4;
  st.cache_hits = 5;
  st.cache_misses = 4;
  st.cache_bytes = 123456;
  st.cache_entries = 4;
  st.cache_evictions = 1;
  st.coalesced = 1;
  st.rejected_queue_full = 2;
  st.rejected_draining = 1;
  st.rejected_bad = 3;
  st.rejected_conn_limit = 7;
  st.active = 1;
  st.queued = 2;
  const Stats gt = decode_stats(encode_stats(st));
  EXPECT_EQ(gt.requests, st.requests);
  EXPECT_EQ(gt.studies_run, st.studies_run);
  EXPECT_EQ(gt.cache_hits, st.cache_hits);
  EXPECT_EQ(gt.cache_misses, st.cache_misses);
  EXPECT_EQ(gt.cache_bytes, st.cache_bytes);
  EXPECT_EQ(gt.cache_entries, st.cache_entries);
  EXPECT_EQ(gt.cache_evictions, st.cache_evictions);
  EXPECT_EQ(gt.coalesced, st.coalesced);
  EXPECT_EQ(gt.rejected_queue_full, st.rejected_queue_full);
  EXPECT_EQ(gt.rejected_draining, st.rejected_draining);
  EXPECT_EQ(gt.rejected_bad, st.rejected_bad);
  EXPECT_EQ(gt.rejected_conn_limit, st.rejected_conn_limit);
  EXPECT_EQ(gt.active, st.active);
  EXPECT_EQ(gt.queued, st.queued);
  // JSON rendering carries every counter by name.
  const std::string j = stats_to_json(st);
  EXPECT_NE(j.find("\"requests\":10"), std::string::npos);
  EXPECT_NE(j.find("\"rejected_queue_full\":2"), std::string::npos);
}

TEST(ServeProtocol, DecodeRejectsGarbledPayloads) {
  Request r;
  const std::string ok = encode_request(r);
  EXPECT_THROW(decode_request(ok.substr(0, ok.size() - 3)), hps::Error);  // short
  EXPECT_THROW(decode_request(ok + "xx"), hps::Error);                    // trailing
  std::string wrong_version = ok;
  wrong_version[0] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_THROW(decode_request(wrong_version), hps::Error);
  std::string bad_kind = ok;
  bad_kind[4] = 99;  // kind byte follows the u32 version
  EXPECT_THROW(decode_request(bad_kind), hps::Error);
  EXPECT_THROW(decode_request(""), hps::Error);
}

TEST(ServeProtocol, Names) {
  EXPECT_STREQ(status_name(Status::kOk), "ok");
  EXPECT_STREQ(status_name(Status::kQueueFull), "queue-full");
  EXPECT_STREQ(status_name(Status::kDraining), "draining");
  EXPECT_STREQ(request_kind_name(Request::Kind::kStudy), "study");
  EXPECT_STREQ(request_kind_name(Request::Kind::kShutdown), "shutdown");
}

// ---------------------------------------------------------------------------
// Framing round-trip over a real socketpair (the daemon's actual transport)

TEST(ServeFraming, RequestFrameRoundTripsOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  Request r;
  r.seed = 7;
  r.limit = 3;
  const std::string payload = encode_request(r);
  ASSERT_TRUE(ipc::write_frame(sv[0], {ipc::MsgType::kRequest, payload}));

  ipc::Message m;
  ASSERT_EQ(ipc::read_message(sv[1], m, kMaxRequestBytes), ipc::ReadStatus::kMessage);
  EXPECT_EQ(m.type, ipc::MsgType::kRequest);
  const Request got = decode_request(m.payload);
  EXPECT_EQ(got.seed, 7u);
  EXPECT_EQ(got.limit, 3);
  ::close(sv[0]);
  ::close(sv[1]);
}

// ---------------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueue, BackpressureAtCapacityAndRefusalAfterClose) {
  AdmissionQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), AdmissionQueue<int>::Push::kAccepted);
  EXPECT_EQ(q.try_push(2), AdmissionQueue<int>::Push::kAccepted);
  EXPECT_EQ(q.try_push(3), AdmissionQueue<int>::Push::kFull);
  EXPECT_EQ(q.size(), 2u);

  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);  // FIFO
  EXPECT_EQ(q.try_push(3), AdmissionQueue<int>::Push::kAccepted);

  q.close();
  EXPECT_EQ(q.try_push(4), AdmissionQueue<int>::Push::kClosed);
  // The admitted backlog drains even after close — admission is a promise.
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(q.pop(out));  // closed and empty: consumer exits
}

TEST(AdmissionQueue, PopBlocksUntilPushOrClose) {
  AdmissionQueue<int> q(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    int out = 0;
    if (q.pop(out) && out == 99) got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  EXPECT_EQ(q.try_push(99), AdmissionQueue<int>::Push::kAccepted);
  consumer.join();
  EXPECT_TRUE(got.load());

  std::thread waiter([&] {
    int out = 0;
    EXPECT_FALSE(q.pop(out));
  });
  q.close();
  waiter.join();
}

// ---------------------------------------------------------------------------
// ResultCache

std::shared_ptr<const CachedResult> make_result(std::size_t line_bytes) {
  auto r = std::make_shared<CachedResult>();
  r->records.push_back(std::string(line_bytes, 'r'));
  return r;
}

TEST(ResultCache, LruEvictionUnderByteBudget) {
  // Budget fits roughly two 4 KB entries (plus struct overhead).
  ResultCache cache(2 * (4096 + 512));
  cache.insert(1, make_result(4096));
  cache.insert(2, make_result(4096));
  EXPECT_NE(cache.lookup(1), nullptr);  // bump 1 to most-recent
  cache.insert(3, make_result(4096));   // evicts 2, the LRU entry
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);

  const auto c = cache.counters();
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.hits, 3u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_GT(c.bytes, 0u);
}

TEST(ResultCache, EvictedEntryStaysAliveForItsHolder) {
  ResultCache cache(4096 + 512);
  cache.insert(1, make_result(4096));
  auto held = cache.lookup(1);
  ASSERT_NE(held, nullptr);
  cache.insert(2, make_result(4096));  // evicts 1 while we still hold it
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(held->records.size(), 1u);  // bytes remain valid for the streamer
}

TEST(ResultCache, OversizedEntryAndZeroBudgetAreDropped) {
  ResultCache tiny(64);
  tiny.insert(1, make_result(4096));  // larger than the whole budget
  EXPECT_EQ(tiny.lookup(1), nullptr);

  ResultCache off(0);
  off.insert(1, make_result(8));
  EXPECT_EQ(off.lookup(1), nullptr);
  EXPECT_EQ(off.counters().entries, 0u);
}

TEST(ResultCache, ReplaceUpdatesAccounting) {
  ResultCache cache(1 << 20);
  cache.insert(1, make_result(1000));
  const auto before = cache.counters().bytes;
  cache.insert(1, make_result(100));
  const auto after = cache.counters().bytes;
  EXPECT_LT(after, before);
  EXPECT_EQ(cache.counters().entries, 1u);
}

// ---------------------------------------------------------------------------
// Live daemon over Unix sockets

struct DaemonFixture {
  std::string path;
  std::unique_ptr<Server> server;
  std::thread runner;

  explicit DaemonFixture(ServerOptions opts) {
    path = "/tmp/hps_serve_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter()++) + ".sock";
    opts.socket_path = path;
    opts.install_signal_guard = false;  // tests drive the interrupt flag directly
    server = std::make_unique<Server>(std::move(opts));
    runner = std::thread([this] { server->run(); });
  }

  ~DaemonFixture() {
    if (server) server->shutdown();
    if (runner.joinable()) runner.join();
    ::unlink(path.c_str());
    robust::clear_interrupt();
  }

  static ServerOptions small() {
    ServerOptions o;
    o.dispatchers = 2;
    o.queue_capacity = 8;
    o.cache_bytes = 16u << 20;
    o.max_duration_scale = 0.1;
    return o;
  }

  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
};

Request tiny_study(std::uint64_t seed, std::int32_t limit = 2) {
  Request r;
  r.kind = Request::Kind::kStudy;
  r.seed = seed;
  r.duration_scale = 0.05;
  r.limit = limit;
  return r;
}

TEST(ServeDaemon, PingStatsAndStudyRoundTrip) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  EXPECT_TRUE(c.ping());

  const auto reply = c.study(tiny_study(7));
  ASSERT_EQ(reply.summary.status, Status::kOk);
  EXPECT_FALSE(reply.summary.cache_hit);
  EXPECT_GT(reply.summary.records, 0u);
  EXPECT_EQ(reply.records.size(), reply.summary.records);
  for (const std::string& line : reply.records) {
    EXPECT_EQ(line.front(), '{');  // ledger JSON lines
    EXPECT_NE(line.find("\"study_key\""), std::string::npos);
  }

  const Stats st = c.stats();
  EXPECT_EQ(st.requests, 1u);
  EXPECT_EQ(st.studies_run, 1u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_hits, 0u);
}

TEST(ServeDaemon, RepeatedRequestServedFromSharedCacheByteIdentical) {
  DaemonFixture d(DaemonFixture::small());
  // Two *separate* clients — the cache is shared daemon state, not
  // per-connection state.
  Client c1 = Client::connect_unix(d.path);
  const auto first = c1.study(tiny_study(11));
  ASSERT_EQ(first.summary.status, Status::kOk);
  EXPECT_FALSE(first.summary.cache_hit);

  Client c2 = Client::connect_unix(d.path);
  const auto second = c2.study(tiny_study(11));
  ASSERT_EQ(second.summary.status, Status::kOk);
  EXPECT_TRUE(second.summary.cache_hit);
  EXPECT_EQ(second.records, first.records);  // byte-identical replay

  const Stats st = c2.stats();
  EXPECT_EQ(st.studies_run, 1u);  // one computation served both
  EXPECT_EQ(st.cache_hits, 1u);

  // force_recompute bypasses the cache and recomputes. Records carry a
  // per-trace wall_seconds measurement, so a *re*computation is identical
  // modulo that one timing field.
  Request forced = tiny_study(11);
  forced.force_recompute = true;
  const auto third = c2.study(forced);
  ASSERT_EQ(third.summary.status, Status::kOk);
  EXPECT_FALSE(third.summary.cache_hit);
  const auto strip_wall = [](std::string line) {
    const std::size_t at = line.find(",\"wall_seconds\":");
    if (at != std::string::npos) line.resize(at);
    return line;
  };
  ASSERT_EQ(third.records.size(), first.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i)
    EXPECT_EQ(strip_wall(third.records[i]), strip_wall(first.records[i]));
  EXPECT_EQ(c2.stats().studies_run, 2u);
}

TEST(ServeDaemon, ConcurrentIdenticalClientsCoalesceToOneComputation) {
  ServerOptions o = DaemonFixture::small();
  o.dispatchers = 2;
  DaemonFixture d(std::move(o));

  constexpr int kClients = 6;
  std::vector<Client::StudyReply> replies(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c = Client::connect_unix(d.path);
      replies[static_cast<std::size_t>(i)] = c.study(tiny_study(23, 3));
    });
  }
  for (std::thread& t : threads) t.join();

  for (const auto& r : replies) {
    ASSERT_EQ(r.summary.status, Status::kOk);
    EXPECT_EQ(r.records, replies[0].records);  // all byte-identical
  }
  Client c = Client::connect_unix(d.path);
  const Stats st = c.stats();
  // Single-flight: with all requests racing on one key, the study ran far
  // fewer times than it was asked for (exactly once unless a client arrived
  // after the result was already cached *and* evicted — impossible here).
  EXPECT_EQ(st.studies_run, 1u);
  EXPECT_EQ(st.cache_hits + st.coalesced, static_cast<std::uint64_t>(kClients - 1));
}

TEST(ServeDaemon, PoisonedAndOversizedRequestsAreRejectedNotFatal) {
  DaemonFixture d(DaemonFixture::small());

  {  // CRC-poisoned frame → kBadRequest reject, connection closed.
    Client c = Client::connect_unix(d.path);
    std::string frame = ipc::encode_frame(
        {ipc::MsgType::kRequest, encode_request(tiny_study(1))});
    frame.back() ^= 0x01;
    ASSERT_EQ(::write(c.fd(), frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    ipc::Message m;
    ASSERT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kMessage);
    EXPECT_EQ(m.type, ipc::MsgType::kReject);
    EXPECT_EQ(decode_summary(m.payload).status, Status::kBadRequest);
    EXPECT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kEof);
  }
  {  // Oversized length field → kOversized reject before any allocation.
    Client c = Client::connect_unix(d.path);
    const std::string big(kMaxRequestBytes + 64, 'z');
    const std::string frame = ipc::encode_frame({ipc::MsgType::kRequest, big});
    // The daemon rejects on the 8-byte header; it may close before we finish
    // writing the body, so a short write is fine.
    (void)::write(c.fd(), frame.data(), frame.size());
    ipc::Message m;
    ASSERT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kMessage);
    EXPECT_EQ(m.type, ipc::MsgType::kReject);
    EXPECT_EQ(decode_summary(m.payload).status, Status::kOversized);
  }
  {  // Undecodable payload inside a well-framed message → kBadRequest.
    Client c = Client::connect_unix(d.path);
    ASSERT_TRUE(ipc::write_frame(c.fd(), {ipc::MsgType::kRequest, "not-a-request"}));
    ipc::Message m;
    ASSERT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kMessage);
    EXPECT_EQ(m.type, ipc::MsgType::kReject);
    EXPECT_EQ(decode_summary(m.payload).status, Status::kBadRequest);
  }

  // The daemon survived all three abuses and still serves honest clients.
  Client c = Client::connect_unix(d.path);
  EXPECT_TRUE(c.ping());
  EXPECT_EQ(c.study(tiny_study(2)).summary.status, Status::kOk);
  EXPECT_GE(c.stats().rejected_bad, 3u);
}

TEST(ServeDaemon, QueueFullRequestsGetExplicitBackpressure) {
  ServerOptions o = DaemonFixture::small();
  o.dispatchers = 1;      // one executor...
  o.queue_capacity = 1;   // ...and room for exactly one waiter
  DaemonFixture d(std::move(o));

  // Fill the executor, then the queue, with *distinct* studies (distinct
  // seeds → distinct cache keys, so single-flight cannot coalesce them).
  // Admission is sequenced via the stats probe: the second holder is only
  // sent once the first has been popped by the dispatcher — otherwise the
  // holder itself can race the pop and eat the queue-full rejection.
  Client probe = Client::connect_unix(d.path);
  const auto wait_for = [&](auto&& pred) {
    for (int i = 0; i < 800; ++i) {
      if (pred(probe.stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };

  // Holder studies are sized for a saturation window of hundreds of ms —
  // the overflow probe fires within ~1 ms of observing saturation, long
  // before the executing study can finish and free the queue slot.
  const auto big_study = [](std::uint64_t seed) {
    Request r = tiny_study(seed, /*limit=*/6);
    r.duration_scale = 0.1;
    return r;
  };
  std::vector<std::thread> holders;
  holders.emplace_back([&] {
    Client c = Client::connect_unix(d.path);
    EXPECT_EQ(c.study(big_study(100)).summary.status, Status::kOk);
  });
  const bool executing = wait_for([](const Stats& st) { return st.active >= 1; });
  holders.emplace_back([&] {
    Client c = Client::connect_unix(d.path);
    EXPECT_EQ(c.study(big_study(101)).summary.status, Status::kOk);
  });
  const bool saturated =
      wait_for([](const Stats& st) { return st.active >= 1 && st.queued >= 1; });

  Client::StudyReply overflow;
  long long elapsed_ms = 0;
  if (saturated) {
    // The next distinct study must be rejected immediately — not queued,
    // not hung.
    const auto start = std::chrono::steady_clock::now();
    overflow = probe.study(big_study(999));
    elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  }
  for (std::thread& t : holders) t.join();  // join before any assert bails out

  ASSERT_TRUE(executing) << "first study never started executing";
  ASSERT_TRUE(saturated) << "daemon never saturated";
  EXPECT_EQ(overflow.summary.status, Status::kQueueFull);
  EXPECT_EQ(overflow.records.size(), 0u);
  EXPECT_LT(elapsed_ms, 2000);
  EXPECT_GE(probe.stats().rejected_queue_full, 1u);
}

TEST(ServeDaemon, SigtermDrainsGracefully) {
  ServerOptions o = DaemonFixture::small();
  DaemonFixture d(std::move(o));

  Client c = Client::connect_unix(d.path);
  ASSERT_EQ(c.study(tiny_study(31)).summary.status, Status::kOk);

  // Same path the installed signal handler takes on SIGTERM.
  robust::request_interrupt(SIGTERM);
  d.runner.join();  // run() must return on its own

  // Post-drain: the socket is gone and new connections are refused.
  EXPECT_THROW(Client::connect_unix(d.path), hps::Error);

  // A draining daemon answered in-flight waiters; its final counters are
  // still readable in-process.
  const Stats st = d.server->stats();
  EXPECT_EQ(st.requests, 1u);
  robust::clear_interrupt();
}

TEST(ServeDaemon, StudyRequestDuringDrainIsRejectedAsDraining) {
  ServerOptions o = DaemonFixture::small();
  DaemonFixture d(std::move(o));

  Client c = Client::connect_unix(d.path);
  ASSERT_TRUE(c.ping());

  // Flip into drain while the connection is already open: the open
  // connection's next study must get kDraining, not a hang.
  robust::request_interrupt(SIGTERM);
  const auto r = c.study(tiny_study(41));
  EXPECT_EQ(r.summary.status, Status::kDraining);
  d.runner.join();
  robust::clear_interrupt();
}

TEST(ServeDaemon, AdmissionClampsBoundWhatRemoteCallersGet) {
  ServerOptions o = DaemonFixture::small();
  o.max_duration_scale = 0.05;
  o.max_limit = 2;
  DaemonFixture d(std::move(o));

  Client c = Client::connect_unix(d.path);
  Request greedy = tiny_study(51, /*limit=*/0);  // 0 = whole corpus
  greedy.duration_scale = 5.0;
  const auto r = c.study(greedy);
  ASSERT_EQ(r.summary.status, Status::kOk);
  // Clamped to max_limit=2 specs; each spec yields grid-many records, so the
  // reply is bounded well below the full corpus.
  EXPECT_LE(r.summary.records, 2u * 16u);
  EXPECT_GT(r.summary.records, 0u);
}

TEST(ServeDaemon, TcpLoopbackServesTheSameProtocol) {
  ServerOptions o = DaemonFixture::small();
  o.tcp_port = 0;  // ephemeral
  DaemonFixture d(std::move(o));
  ASSERT_GT(d.server->tcp_port(), 0);

  Client c = Client::connect_tcp("127.0.0.1", d.server->tcp_port());
  EXPECT_TRUE(c.ping());
  const auto r = c.study(tiny_study(61));
  EXPECT_EQ(r.summary.status, Status::kOk);
  EXPECT_GT(r.records.size(), 0u);
}

TEST(ServeDaemon, ConnectionCapRejectsExcessConnections) {
  ServerOptions o = DaemonFixture::small();
  o.max_connections = 1;
  DaemonFixture d(std::move(o));

  Client first = Client::connect_unix(d.path);
  ASSERT_TRUE(first.ping());  // the single connection slot is taken

  // The next connection is accepted, told why it cannot be served, and
  // closed — never a silent hang, never an unbounded thread.
  Client second = Client::connect_unix(d.path);
  ipc::Message m;
  ASSERT_EQ(ipc::read_message(second.fd(), m), ipc::ReadStatus::kMessage);
  EXPECT_EQ(m.type, ipc::MsgType::kReject);
  const Summary s = decode_summary(m.payload);
  EXPECT_EQ(s.status, Status::kQueueFull);
  EXPECT_NE(s.detail.find("connection limit"), std::string::npos);
  EXPECT_EQ(ipc::read_message(second.fd(), m), ipc::ReadStatus::kEof);

  // The admitted connection is unaffected, and the rejection was counted.
  EXPECT_TRUE(first.ping());
  EXPECT_GE(first.stats().rejected_conn_limit, 1u);
}

TEST(ServeDaemon, TcpShutdownIsRefusedUnixShutdownWorks) {
  ServerOptions o = DaemonFixture::small();
  o.tcp_port = 0;
  DaemonFixture d(std::move(o));
  ASSERT_GT(d.server->tcp_port(), 0);

  // Shutdown over TCP: explicit bad-request reject, daemon stays up.
  Client tcp = Client::connect_tcp("127.0.0.1", d.server->tcp_port());
  const Summary refused = tcp.shutdown_server();
  EXPECT_EQ(refused.status, Status::kBadRequest);
  EXPECT_NE(refused.detail.find("Unix-domain"), std::string::npos);

  Client unix_client = Client::connect_unix(d.path);
  EXPECT_TRUE(unix_client.ping());  // still serving

  // The same request over the Unix socket drains as before.
  const Summary ack = unix_client.shutdown_server();
  EXPECT_EQ(ack.status, Status::kOk);
  d.runner.join();
}

TEST(ServeListener, RefusesToStealALiveDaemonsSocket) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  ASSERT_TRUE(c.ping());

  ServerOptions o = DaemonFixture::small();
  o.socket_path = d.path;
  EXPECT_THROW(Server second(std::move(o)), hps::Error);

  // The live daemon kept its socket and its traffic.
  EXPECT_TRUE(c.ping());
}

TEST(ServeListener, StaleSocketFileIsReclaimed) {
  const std::string path = "/tmp/hps_serve_stale_" + std::to_string(::getpid()) +
                           ".sock";
  ::unlink(path.c_str());
  // Bind a socket, then close it: the filesystem entry survives with no
  // listener behind it — exactly what a crashed daemon leaves.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ::close(fd);

  ServerOptions o = DaemonFixture::small();
  o.socket_path = path;
  EXPECT_NO_THROW({ Server reclaimed(std::move(o)); });  // stale file reclaimed
  ::unlink(path.c_str());
}

TEST(ServeDaemon, ShutdownRequestAcksThenDrains) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  const Summary ack = c.shutdown_server();
  EXPECT_EQ(ack.status, Status::kOk);
  d.runner.join();
  EXPECT_THROW(Client::connect_unix(d.path), hps::Error);
}

// ---------------------------------------------------------------------------
// Protocol v2: observability extensions stay backward compatible

TEST(ServeProtocol, StatsV2FieldsRoundTrip) {
  Stats st;
  st.requests = 10;
  st.uptime_ms = 123456;
  st.ledger_records = 10;
  st.spans_dropped = 3;
  const Stats gt = decode_stats(encode_stats(st));
  EXPECT_EQ(gt.requests, st.requests);
  EXPECT_EQ(gt.uptime_ms, st.uptime_ms);
  EXPECT_EQ(gt.ledger_records, st.ledger_records);
  EXPECT_EQ(gt.spans_dropped, st.spans_dropped);
  const std::string j = stats_to_json(st);
  EXPECT_NE(j.find("\"uptime_ms\":123456"), std::string::npos);
  EXPECT_NE(j.find("\"spans_dropped\":3"), std::string::npos);
}

TEST(ServeProtocol, V1StatsPayloadStillDecodesWithV2FieldsDefaulted) {
  Stats st;
  st.requests = 7;
  st.cache_hits = 4;
  st.uptime_ms = 999;       // v2-only — must vanish from a v1 payload
  st.ledger_records = 888;
  st.spans_dropped = 777;
  // Reconstruct what a v1 daemon would have sent: the v2 extension is
  // *appended*, so drop the three trailing u64s and patch the version word.
  std::string v1 = encode_stats(st);
  ASSERT_GT(v1.size(), 3u * 8u);
  v1.resize(v1.size() - 3 * 8);
  v1[0] = 1;  // little-endian u32 version: 2 -> 1
  const Stats gt = decode_stats(v1);
  EXPECT_EQ(gt.requests, 7u);
  EXPECT_EQ(gt.cache_hits, 4u);
  EXPECT_EQ(gt.uptime_ms, 0u);
  EXPECT_EQ(gt.ledger_records, 0u);
  EXPECT_EQ(gt.spans_dropped, 0u);
  // A v1 payload that *kept* the trailing bytes is garbage, not half-valid.
  std::string v1_trailing = encode_stats(st);
  v1_trailing[0] = 1;
  EXPECT_THROW(decode_stats(v1_trailing), hps::Error);
}

TEST(ServeProtocol, V1RequestPayloadStillDecodesButMayNotClaimMetrics) {
  Request r = tiny_study(5);
  std::string v1 = encode_request(r);
  v1[0] = 1;  // same byte layout in v1; only the version word moved
  const Request got = decode_request(v1);
  EXPECT_EQ(got.kind, Request::Kind::kStudy);
  EXPECT_EQ(got.seed, 5u);

  // kMetrics is a v2 kind: valid in a v2 payload, out of range in v1.
  Request m;
  m.kind = Request::Kind::kMetrics;
  std::string enc = encode_request(m);
  EXPECT_EQ(decode_request(enc).kind, Request::Kind::kMetrics);
  enc[0] = 1;
  EXPECT_THROW(decode_request(enc), hps::Error);
}

TEST(ServeMetrics, MetricsReplyCodecRoundTrip) {
  MetricsReply m;
  m.stats.requests = 5;
  m.stats.spans_dropped = 2;
  m.uptime_seconds = 12.5;
  MetricsReply::Hist h;
  h.name = std::string(kPhaseMetricPrefix) + "execute";
  h.data.bounds = {0.001, 0.01, 0.1};
  h.data.buckets = {1, 2, 3, 0};
  h.data.count = 6;
  h.data.sum = 0.123;
  m.hists.push_back(h);
  obs::CostCell cell;
  cell.app_class = "stencil";
  cell.scheme = "packet";
  cell.count = 4;
  cell.wall_seconds = 0.25;
  m.costs.push_back(cell);

  const MetricsReply got = decode_metrics(encode_metrics(m));
  EXPECT_EQ(got.stats.requests, 5u);
  EXPECT_EQ(got.stats.spans_dropped, 2u);
  EXPECT_DOUBLE_EQ(got.uptime_seconds, 12.5);
  ASSERT_EQ(got.hists.size(), 1u);
  EXPECT_EQ(got.hists[0].name, h.name);
  EXPECT_EQ(got.hists[0].data.bounds, h.data.bounds);
  EXPECT_EQ(got.hists[0].data.buckets, h.data.buckets);
  EXPECT_EQ(got.hists[0].data.count, 6u);
  EXPECT_DOUBLE_EQ(got.hists[0].data.sum, 0.123);
  ASSERT_EQ(got.costs.size(), 1u);
  EXPECT_EQ(got.costs[0].app_class, "stencil");
  EXPECT_EQ(got.costs[0].scheme, "packet");
  EXPECT_EQ(got.costs[0].count, 4u);
  EXPECT_DOUBLE_EQ(got.costs[0].wall_seconds, 0.25);
  ASSERT_NE(got.find(h.name), nullptr);
  EXPECT_EQ(got.find("no.such.metric"), nullptr);

  const std::string enc = encode_metrics(m);
  EXPECT_THROW(decode_metrics(enc.substr(0, enc.size() - 5)), hps::Error);
  EXPECT_THROW(decode_metrics(enc + "z"), hps::Error);
  EXPECT_THROW(decode_metrics(""), hps::Error);
}

// ---------------------------------------------------------------------------
// Live observability: kMetrics, serve ledger, tracing neutrality

TEST(ServeMetrics, LiveDaemonServesPhaseHistogramsAndCosts) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  ASSERT_EQ(c.study(tiny_study(71)).summary.status, Status::kOk);       // miss
  ASSERT_TRUE(c.study(tiny_study(71)).summary.cache_hit);               // hit

  const MetricsReply m = c.metrics();
  EXPECT_EQ(m.stats.requests, 2u);
  EXPECT_EQ(m.stats.cache_hits, 1u);
  EXPECT_GT(m.uptime_seconds, 0.0);

  // Every request passes decode/clamp/cache_lookup/stream; only the computed
  // one passes queue_wait/execute/cache_insert.
  const auto count_of = [&](const std::string& name) -> std::uint64_t {
    const MetricsReply::Hist* h = m.find(name);
    return h ? h->data.count : 0;
  };
  EXPECT_EQ(count_of(kRequestMetric), 2u);
  EXPECT_EQ(count_of(std::string(kPhaseMetricPrefix) + "decode"), 2u);
  EXPECT_EQ(count_of(std::string(kPhaseMetricPrefix) + "cache_lookup"), 2u);
  EXPECT_EQ(count_of(std::string(kPhaseMetricPrefix) + "stream"), 2u);
  EXPECT_EQ(count_of(std::string(kPhaseMetricPrefix) + "execute"), 1u);
  EXPECT_EQ(count_of(std::string(kPhaseMetricPrefix) + "cache_insert"), 1u);
  // The computed study populates per-class latency and the cost model.
  bool saw_class_hist = false;
  for (const auto& h : m.hists)
    if (h.name.rfind(kClassMetricPrefix, 0) == 0 && h.data.count > 0) saw_class_hist = true;
  EXPECT_TRUE(saw_class_hist);
  ASSERT_FALSE(m.costs.empty());
  for (const auto& cell : m.costs) {
    EXPECT_FALSE(cell.app_class.empty());
    EXPECT_FALSE(cell.scheme.empty());
    EXPECT_GT(cell.count, 0u);
  }

  // The Prometheus rendering carries the counter families and histograms.
  const std::string prom = render_prometheus(m);
  EXPECT_NE(prom.find("# TYPE hpcsweepd_requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("hpcsweepd_requests_total 2"), std::string::npos);
  EXPECT_NE(prom.find("hpcsweepd_phase_latency_seconds_bucket"), std::string::npos);
  EXPECT_NE(prom.find("{phase=\"execute\""), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  // Dashboard rendering is exercised for crash-freedom and headline counters.
  const std::string dash = render_dashboard(m, nullptr, 2.0);
  EXPECT_NE(dash.find("hpcsweepd"), std::string::npos);
}

TEST(ServeLedger, OneRecordPerRequestPhasesTileAndCostFooterOnDrain) {
  const std::string stem = "/tmp/hps_serve_obs_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++);
  const std::string ledger_path = stem + ".jsonl";
  const std::string trace_path = stem + ".trace.json";
  {
    ServerOptions o = DaemonFixture::small();
    o.serve_ledger_path = ledger_path;
    o.trace_path = trace_path;
    DaemonFixture d(std::move(o));
    Client c = Client::connect_unix(d.path);
    ASSERT_EQ(c.study(tiny_study(81)).summary.status, Status::kOk);   // computed
    ASSERT_TRUE(c.study(tiny_study(81)).summary.cache_hit);           // hit
    ASSERT_EQ(c.study(tiny_study(82)).summary.status, Status::kOk);   // computed
    EXPECT_EQ(c.stats().ledger_records, 3u);
  }  // fixture dtor drains: cost footer + Chrome trace written here

  const obs::ServeLedger led = obs::load_serve_ledger(ledger_path);
  ASSERT_EQ(led.requests.size(), 3u);
  std::set<std::uint64_t> ids;
  for (const obs::ServeRecord& rec : led.requests) {
    EXPECT_EQ(rec.schema, obs::kServeSchemaVersion);
    EXPECT_NE(rec.trace_id, 0u);
    ids.insert(rec.trace_id);
    EXPECT_EQ(rec.status, "ok");
    EXPECT_FALSE(rec.app_classes.empty());
    EXPECT_GT(rec.total_ns, 0);
    // Acceptance bar: per-phase durations tile the request within 1%.
    std::int64_t phase_sum = 0;
    for (const auto& [name, ns] : rec.phases) {
      EXPECT_GE(ns, 0) << name;
      phase_sum += ns;
    }
    EXPECT_NEAR(static_cast<double>(phase_sum), static_cast<double>(rec.total_ns),
                static_cast<double>(rec.total_ns) * 0.01);
  }
  EXPECT_EQ(ids.size(), 3u);  // trace ids are unique per request
  EXPECT_FALSE(led.requests[0].cache_hit);
  EXPECT_TRUE(led.requests[1].cache_hit);
  EXPECT_FALSE(led.requests[2].cache_hit);

  // Drain appended the measured-cost footer for the two computed studies.
  ASSERT_FALSE(led.costs.empty());
  double wall_total = 0;
  for (const obs::CostCell& cell : led.costs) wall_total += cell.wall_seconds;
  EXPECT_GT(wall_total, 0.0);

  // The Chrome trace landed too, with trace-id-tagged request spans.
  std::ifstream tf(trace_path);
  ASSERT_TRUE(tf.good());
  std::string trace((std::istreambuf_iterator<char>(tf)), std::istreambuf_iterator<char>());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(trace.find("\"request\""), std::string::npos);

  std::remove(ledger_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(ServeDaemon, TracingOnOrOffPredictionsAreIdentical) {
  // The trace id must never leak into study results or cache keys: a daemon
  // with full tracing enabled streams the same records (modulo the measured
  // wall_seconds timing field) as one with tracing off.
  const std::string stem = "/tmp/hps_serve_trc_" + std::to_string(::getpid()) + "_" +
                           std::to_string(DaemonFixture::counter()++);
  Client::StudyReply plain, traced;
  {
    DaemonFixture d(DaemonFixture::small());
    Client c = Client::connect_unix(d.path);
    plain = c.study(tiny_study(91));
  }
  {
    ServerOptions o = DaemonFixture::small();
    o.serve_ledger_path = stem + ".jsonl";
    o.trace_path = stem + ".trace.json";
    DaemonFixture d(std::move(o));
    Client c = Client::connect_unix(d.path);
    traced = c.study(tiny_study(91));
  }
  ASSERT_EQ(plain.summary.status, Status::kOk);
  ASSERT_EQ(traced.summary.status, Status::kOk);
  const auto strip_wall = [](std::string line) {
    const std::size_t at = line.find(",\"wall_seconds\":");
    if (at != std::string::npos) line.resize(at);
    return line;
  };
  ASSERT_EQ(traced.records.size(), plain.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i)
    EXPECT_EQ(strip_wall(traced.records[i]), strip_wall(plain.records[i]));
  std::remove((stem + ".jsonl").c_str());
  std::remove((stem + ".trace.json").c_str());
}

}  // namespace
}  // namespace hps::serve
