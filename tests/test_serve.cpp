// hpcsweepd serving stack: protocol codecs, admission queue, result cache,
// and a live daemon exercised over real Unix sockets — framing round-trips,
// poisoned/oversized request rejection, shared-cache coherence across
// concurrent clients, single-flight coalescing, queue-full backpressure, and
// drain on SIGTERM.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "robust/interrupt.hpp"
#include "robust/ipc.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"

namespace hps::serve {
namespace {

namespace ipc = hps::robust::ipc;

// ---------------------------------------------------------------------------
// Protocol codecs

TEST(ServeProtocol, RequestRoundTripPreservesEveryField) {
  Request r;
  r.kind = Request::Kind::kStudy;
  r.seed = 0xdeadbeefcafe1234ull;
  r.duration_scale = 0.375;
  r.limit = 17;
  r.force_recompute = true;
  r.wall_deadline_s = 12.5;
  r.max_des_events = 9876543210ull;
  r.virtual_horizon_ns = 1234567890123ll;

  const Request got = decode_request(encode_request(r));
  EXPECT_EQ(got.kind, r.kind);
  EXPECT_EQ(got.seed, r.seed);
  EXPECT_DOUBLE_EQ(got.duration_scale, r.duration_scale);
  EXPECT_EQ(got.limit, r.limit);
  EXPECT_EQ(got.force_recompute, r.force_recompute);
  EXPECT_DOUBLE_EQ(got.wall_deadline_s, r.wall_deadline_s);
  EXPECT_EQ(got.max_des_events, r.max_des_events);
  EXPECT_EQ(got.virtual_horizon_ns, r.virtual_horizon_ns);
}

TEST(ServeProtocol, SummaryAndStatsRoundTrip) {
  Summary s;
  s.status = Status::kDegraded;
  s.cache_hit = true;
  s.records = 42;
  s.degraded = 3;
  s.wall_seconds = 1.25;
  s.detail = "three traces hit the wall deadline";
  const Summary gs = decode_summary(encode_summary(s));
  EXPECT_EQ(gs.status, s.status);
  EXPECT_EQ(gs.cache_hit, s.cache_hit);
  EXPECT_EQ(gs.records, s.records);
  EXPECT_EQ(gs.degraded, s.degraded);
  EXPECT_DOUBLE_EQ(gs.wall_seconds, s.wall_seconds);
  EXPECT_EQ(gs.detail, s.detail);

  Stats st;
  st.requests = 10;
  st.studies_run = 4;
  st.cache_hits = 5;
  st.cache_misses = 4;
  st.cache_bytes = 123456;
  st.cache_entries = 4;
  st.cache_evictions = 1;
  st.coalesced = 1;
  st.rejected_queue_full = 2;
  st.rejected_draining = 1;
  st.rejected_bad = 3;
  st.rejected_conn_limit = 7;
  st.active = 1;
  st.queued = 2;
  const Stats gt = decode_stats(encode_stats(st));
  EXPECT_EQ(gt.requests, st.requests);
  EXPECT_EQ(gt.studies_run, st.studies_run);
  EXPECT_EQ(gt.cache_hits, st.cache_hits);
  EXPECT_EQ(gt.cache_misses, st.cache_misses);
  EXPECT_EQ(gt.cache_bytes, st.cache_bytes);
  EXPECT_EQ(gt.cache_entries, st.cache_entries);
  EXPECT_EQ(gt.cache_evictions, st.cache_evictions);
  EXPECT_EQ(gt.coalesced, st.coalesced);
  EXPECT_EQ(gt.rejected_queue_full, st.rejected_queue_full);
  EXPECT_EQ(gt.rejected_draining, st.rejected_draining);
  EXPECT_EQ(gt.rejected_bad, st.rejected_bad);
  EXPECT_EQ(gt.rejected_conn_limit, st.rejected_conn_limit);
  EXPECT_EQ(gt.active, st.active);
  EXPECT_EQ(gt.queued, st.queued);
  // JSON rendering carries every counter by name.
  const std::string j = stats_to_json(st);
  EXPECT_NE(j.find("\"requests\":10"), std::string::npos);
  EXPECT_NE(j.find("\"rejected_queue_full\":2"), std::string::npos);
}

TEST(ServeProtocol, DecodeRejectsGarbledPayloads) {
  Request r;
  const std::string ok = encode_request(r);
  EXPECT_THROW(decode_request(ok.substr(0, ok.size() - 3)), hps::Error);  // short
  EXPECT_THROW(decode_request(ok + "xx"), hps::Error);                    // trailing
  std::string wrong_version = ok;
  wrong_version[0] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_THROW(decode_request(wrong_version), hps::Error);
  std::string bad_kind = ok;
  bad_kind[4] = 99;  // kind byte follows the u32 version
  EXPECT_THROW(decode_request(bad_kind), hps::Error);
  EXPECT_THROW(decode_request(""), hps::Error);
}

TEST(ServeProtocol, Names) {
  EXPECT_STREQ(status_name(Status::kOk), "ok");
  EXPECT_STREQ(status_name(Status::kQueueFull), "queue-full");
  EXPECT_STREQ(status_name(Status::kDraining), "draining");
  EXPECT_STREQ(request_kind_name(Request::Kind::kStudy), "study");
  EXPECT_STREQ(request_kind_name(Request::Kind::kShutdown), "shutdown");
}

// ---------------------------------------------------------------------------
// Framing round-trip over a real socketpair (the daemon's actual transport)

TEST(ServeFraming, RequestFrameRoundTripsOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  Request r;
  r.seed = 7;
  r.limit = 3;
  const std::string payload = encode_request(r);
  ASSERT_TRUE(ipc::write_frame(sv[0], {ipc::MsgType::kRequest, payload}));

  ipc::Message m;
  ASSERT_EQ(ipc::read_message(sv[1], m, kMaxRequestBytes), ipc::ReadStatus::kMessage);
  EXPECT_EQ(m.type, ipc::MsgType::kRequest);
  const Request got = decode_request(m.payload);
  EXPECT_EQ(got.seed, 7u);
  EXPECT_EQ(got.limit, 3);
  ::close(sv[0]);
  ::close(sv[1]);
}

// ---------------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueue, BackpressureAtCapacityAndRefusalAfterClose) {
  AdmissionQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), AdmissionQueue<int>::Push::kAccepted);
  EXPECT_EQ(q.try_push(2), AdmissionQueue<int>::Push::kAccepted);
  EXPECT_EQ(q.try_push(3), AdmissionQueue<int>::Push::kFull);
  EXPECT_EQ(q.size(), 2u);

  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);  // FIFO
  EXPECT_EQ(q.try_push(3), AdmissionQueue<int>::Push::kAccepted);

  q.close();
  EXPECT_EQ(q.try_push(4), AdmissionQueue<int>::Push::kClosed);
  // The admitted backlog drains even after close — admission is a promise.
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(q.pop(out));  // closed and empty: consumer exits
}

TEST(AdmissionQueue, PopBlocksUntilPushOrClose) {
  AdmissionQueue<int> q(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    int out = 0;
    if (q.pop(out) && out == 99) got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  EXPECT_EQ(q.try_push(99), AdmissionQueue<int>::Push::kAccepted);
  consumer.join();
  EXPECT_TRUE(got.load());

  std::thread waiter([&] {
    int out = 0;
    EXPECT_FALSE(q.pop(out));
  });
  q.close();
  waiter.join();
}

// ---------------------------------------------------------------------------
// ResultCache

std::shared_ptr<const CachedResult> make_result(std::size_t line_bytes) {
  auto r = std::make_shared<CachedResult>();
  r->records.push_back(std::string(line_bytes, 'r'));
  return r;
}

TEST(ResultCache, LruEvictionUnderByteBudget) {
  // Budget fits roughly two 4 KB entries (plus struct overhead).
  ResultCache cache(2 * (4096 + 512));
  cache.insert(1, make_result(4096));
  cache.insert(2, make_result(4096));
  EXPECT_NE(cache.lookup(1), nullptr);  // bump 1 to most-recent
  cache.insert(3, make_result(4096));   // evicts 2, the LRU entry
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);

  const auto c = cache.counters();
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.hits, 3u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_GT(c.bytes, 0u);
}

TEST(ResultCache, EvictedEntryStaysAliveForItsHolder) {
  ResultCache cache(4096 + 512);
  cache.insert(1, make_result(4096));
  auto held = cache.lookup(1);
  ASSERT_NE(held, nullptr);
  cache.insert(2, make_result(4096));  // evicts 1 while we still hold it
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(held->records.size(), 1u);  // bytes remain valid for the streamer
}

TEST(ResultCache, OversizedEntryAndZeroBudgetAreDropped) {
  ResultCache tiny(64);
  tiny.insert(1, make_result(4096));  // larger than the whole budget
  EXPECT_EQ(tiny.lookup(1), nullptr);

  ResultCache off(0);
  off.insert(1, make_result(8));
  EXPECT_EQ(off.lookup(1), nullptr);
  EXPECT_EQ(off.counters().entries, 0u);
}

TEST(ResultCache, ReplaceUpdatesAccounting) {
  ResultCache cache(1 << 20);
  cache.insert(1, make_result(1000));
  const auto before = cache.counters().bytes;
  cache.insert(1, make_result(100));
  const auto after = cache.counters().bytes;
  EXPECT_LT(after, before);
  EXPECT_EQ(cache.counters().entries, 1u);
}

// ---------------------------------------------------------------------------
// Live daemon over Unix sockets

struct DaemonFixture {
  std::string path;
  std::unique_ptr<Server> server;
  std::thread runner;

  explicit DaemonFixture(ServerOptions opts) {
    path = "/tmp/hps_serve_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter()++) + ".sock";
    opts.socket_path = path;
    opts.install_signal_guard = false;  // tests drive the interrupt flag directly
    server = std::make_unique<Server>(std::move(opts));
    runner = std::thread([this] { server->run(); });
  }

  ~DaemonFixture() {
    if (server) server->shutdown();
    if (runner.joinable()) runner.join();
    ::unlink(path.c_str());
    robust::clear_interrupt();
  }

  static ServerOptions small() {
    ServerOptions o;
    o.dispatchers = 2;
    o.queue_capacity = 8;
    o.cache_bytes = 16u << 20;
    o.max_duration_scale = 0.1;
    return o;
  }

  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
};

Request tiny_study(std::uint64_t seed, std::int32_t limit = 2) {
  Request r;
  r.kind = Request::Kind::kStudy;
  r.seed = seed;
  r.duration_scale = 0.05;
  r.limit = limit;
  return r;
}

TEST(ServeDaemon, PingStatsAndStudyRoundTrip) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  EXPECT_TRUE(c.ping());

  const auto reply = c.study(tiny_study(7));
  ASSERT_EQ(reply.summary.status, Status::kOk);
  EXPECT_FALSE(reply.summary.cache_hit);
  EXPECT_GT(reply.summary.records, 0u);
  EXPECT_EQ(reply.records.size(), reply.summary.records);
  for (const std::string& line : reply.records) {
    EXPECT_EQ(line.front(), '{');  // ledger JSON lines
    EXPECT_NE(line.find("\"study_key\""), std::string::npos);
  }

  const Stats st = c.stats();
  EXPECT_EQ(st.requests, 1u);
  EXPECT_EQ(st.studies_run, 1u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_hits, 0u);
}

TEST(ServeDaemon, RepeatedRequestServedFromSharedCacheByteIdentical) {
  DaemonFixture d(DaemonFixture::small());
  // Two *separate* clients — the cache is shared daemon state, not
  // per-connection state.
  Client c1 = Client::connect_unix(d.path);
  const auto first = c1.study(tiny_study(11));
  ASSERT_EQ(first.summary.status, Status::kOk);
  EXPECT_FALSE(first.summary.cache_hit);

  Client c2 = Client::connect_unix(d.path);
  const auto second = c2.study(tiny_study(11));
  ASSERT_EQ(second.summary.status, Status::kOk);
  EXPECT_TRUE(second.summary.cache_hit);
  EXPECT_EQ(second.records, first.records);  // byte-identical replay

  const Stats st = c2.stats();
  EXPECT_EQ(st.studies_run, 1u);  // one computation served both
  EXPECT_EQ(st.cache_hits, 1u);

  // force_recompute bypasses the cache and recomputes. Records carry a
  // per-trace wall_seconds measurement, so a *re*computation is identical
  // modulo that one timing field.
  Request forced = tiny_study(11);
  forced.force_recompute = true;
  const auto third = c2.study(forced);
  ASSERT_EQ(third.summary.status, Status::kOk);
  EXPECT_FALSE(third.summary.cache_hit);
  const auto strip_wall = [](std::string line) {
    const std::size_t at = line.find(",\"wall_seconds\":");
    if (at != std::string::npos) line.resize(at);
    return line;
  };
  ASSERT_EQ(third.records.size(), first.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i)
    EXPECT_EQ(strip_wall(third.records[i]), strip_wall(first.records[i]));
  EXPECT_EQ(c2.stats().studies_run, 2u);
}

TEST(ServeDaemon, ConcurrentIdenticalClientsCoalesceToOneComputation) {
  ServerOptions o = DaemonFixture::small();
  o.dispatchers = 2;
  DaemonFixture d(std::move(o));

  constexpr int kClients = 6;
  std::vector<Client::StudyReply> replies(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c = Client::connect_unix(d.path);
      replies[static_cast<std::size_t>(i)] = c.study(tiny_study(23, 3));
    });
  }
  for (std::thread& t : threads) t.join();

  for (const auto& r : replies) {
    ASSERT_EQ(r.summary.status, Status::kOk);
    EXPECT_EQ(r.records, replies[0].records);  // all byte-identical
  }
  Client c = Client::connect_unix(d.path);
  const Stats st = c.stats();
  // Single-flight: with all requests racing on one key, the study ran far
  // fewer times than it was asked for (exactly once unless a client arrived
  // after the result was already cached *and* evicted — impossible here).
  EXPECT_EQ(st.studies_run, 1u);
  EXPECT_EQ(st.cache_hits + st.coalesced, static_cast<std::uint64_t>(kClients - 1));
}

TEST(ServeDaemon, PoisonedAndOversizedRequestsAreRejectedNotFatal) {
  DaemonFixture d(DaemonFixture::small());

  {  // CRC-poisoned frame → kBadRequest reject, connection closed.
    Client c = Client::connect_unix(d.path);
    std::string frame = ipc::encode_frame(
        {ipc::MsgType::kRequest, encode_request(tiny_study(1))});
    frame.back() ^= 0x01;
    ASSERT_EQ(::write(c.fd(), frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    ipc::Message m;
    ASSERT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kMessage);
    EXPECT_EQ(m.type, ipc::MsgType::kReject);
    EXPECT_EQ(decode_summary(m.payload).status, Status::kBadRequest);
    EXPECT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kEof);
  }
  {  // Oversized length field → kOversized reject before any allocation.
    Client c = Client::connect_unix(d.path);
    const std::string big(kMaxRequestBytes + 64, 'z');
    const std::string frame = ipc::encode_frame({ipc::MsgType::kRequest, big});
    // The daemon rejects on the 8-byte header; it may close before we finish
    // writing the body, so a short write is fine.
    (void)::write(c.fd(), frame.data(), frame.size());
    ipc::Message m;
    ASSERT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kMessage);
    EXPECT_EQ(m.type, ipc::MsgType::kReject);
    EXPECT_EQ(decode_summary(m.payload).status, Status::kOversized);
  }
  {  // Undecodable payload inside a well-framed message → kBadRequest.
    Client c = Client::connect_unix(d.path);
    ASSERT_TRUE(ipc::write_frame(c.fd(), {ipc::MsgType::kRequest, "not-a-request"}));
    ipc::Message m;
    ASSERT_EQ(ipc::read_message(c.fd(), m), ipc::ReadStatus::kMessage);
    EXPECT_EQ(m.type, ipc::MsgType::kReject);
    EXPECT_EQ(decode_summary(m.payload).status, Status::kBadRequest);
  }

  // The daemon survived all three abuses and still serves honest clients.
  Client c = Client::connect_unix(d.path);
  EXPECT_TRUE(c.ping());
  EXPECT_EQ(c.study(tiny_study(2)).summary.status, Status::kOk);
  EXPECT_GE(c.stats().rejected_bad, 3u);
}

TEST(ServeDaemon, QueueFullRequestsGetExplicitBackpressure) {
  ServerOptions o = DaemonFixture::small();
  o.dispatchers = 1;      // one executor...
  o.queue_capacity = 1;   // ...and room for exactly one waiter
  DaemonFixture d(std::move(o));

  // Fill the executor, then the queue, with *distinct* studies (distinct
  // seeds → distinct cache keys, so single-flight cannot coalesce them).
  // Admission is sequenced via the stats probe: the second holder is only
  // sent once the first has been popped by the dispatcher — otherwise the
  // holder itself can race the pop and eat the queue-full rejection.
  Client probe = Client::connect_unix(d.path);
  const auto wait_for = [&](auto&& pred) {
    for (int i = 0; i < 800; ++i) {
      if (pred(probe.stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };

  // Holder studies are sized for a saturation window of hundreds of ms —
  // the overflow probe fires within ~1 ms of observing saturation, long
  // before the executing study can finish and free the queue slot.
  const auto big_study = [](std::uint64_t seed) {
    Request r = tiny_study(seed, /*limit=*/6);
    r.duration_scale = 0.1;
    return r;
  };
  std::vector<std::thread> holders;
  holders.emplace_back([&] {
    Client c = Client::connect_unix(d.path);
    EXPECT_EQ(c.study(big_study(100)).summary.status, Status::kOk);
  });
  const bool executing = wait_for([](const Stats& st) { return st.active >= 1; });
  holders.emplace_back([&] {
    Client c = Client::connect_unix(d.path);
    EXPECT_EQ(c.study(big_study(101)).summary.status, Status::kOk);
  });
  const bool saturated =
      wait_for([](const Stats& st) { return st.active >= 1 && st.queued >= 1; });

  Client::StudyReply overflow;
  long long elapsed_ms = 0;
  if (saturated) {
    // The next distinct study must be rejected immediately — not queued,
    // not hung.
    const auto start = std::chrono::steady_clock::now();
    overflow = probe.study(big_study(999));
    elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  }
  for (std::thread& t : holders) t.join();  // join before any assert bails out

  ASSERT_TRUE(executing) << "first study never started executing";
  ASSERT_TRUE(saturated) << "daemon never saturated";
  EXPECT_EQ(overflow.summary.status, Status::kQueueFull);
  EXPECT_EQ(overflow.records.size(), 0u);
  EXPECT_LT(elapsed_ms, 2000);
  EXPECT_GE(probe.stats().rejected_queue_full, 1u);
}

TEST(ServeDaemon, SigtermDrainsGracefully) {
  ServerOptions o = DaemonFixture::small();
  DaemonFixture d(std::move(o));

  Client c = Client::connect_unix(d.path);
  ASSERT_EQ(c.study(tiny_study(31)).summary.status, Status::kOk);

  // Same path the installed signal handler takes on SIGTERM.
  robust::request_interrupt(SIGTERM);
  d.runner.join();  // run() must return on its own

  // Post-drain: the socket is gone and new connections are refused.
  EXPECT_THROW(Client::connect_unix(d.path), hps::Error);

  // A draining daemon answered in-flight waiters; its final counters are
  // still readable in-process.
  const Stats st = d.server->stats();
  EXPECT_EQ(st.requests, 1u);
  robust::clear_interrupt();
}

TEST(ServeDaemon, StudyRequestDuringDrainIsRejectedAsDraining) {
  ServerOptions o = DaemonFixture::small();
  DaemonFixture d(std::move(o));

  Client c = Client::connect_unix(d.path);
  ASSERT_TRUE(c.ping());

  // Flip into drain while the connection is already open: the open
  // connection's next study must get kDraining, not a hang.
  robust::request_interrupt(SIGTERM);
  const auto r = c.study(tiny_study(41));
  EXPECT_EQ(r.summary.status, Status::kDraining);
  d.runner.join();
  robust::clear_interrupt();
}

TEST(ServeDaemon, AdmissionClampsBoundWhatRemoteCallersGet) {
  ServerOptions o = DaemonFixture::small();
  o.max_duration_scale = 0.05;
  o.max_limit = 2;
  DaemonFixture d(std::move(o));

  Client c = Client::connect_unix(d.path);
  Request greedy = tiny_study(51, /*limit=*/0);  // 0 = whole corpus
  greedy.duration_scale = 5.0;
  const auto r = c.study(greedy);
  ASSERT_EQ(r.summary.status, Status::kOk);
  // Clamped to max_limit=2 specs; each spec yields grid-many records, so the
  // reply is bounded well below the full corpus.
  EXPECT_LE(r.summary.records, 2u * 16u);
  EXPECT_GT(r.summary.records, 0u);
}

TEST(ServeDaemon, TcpLoopbackServesTheSameProtocol) {
  ServerOptions o = DaemonFixture::small();
  o.tcp_port = 0;  // ephemeral
  DaemonFixture d(std::move(o));
  ASSERT_GT(d.server->tcp_port(), 0);

  Client c = Client::connect_tcp("127.0.0.1", d.server->tcp_port());
  EXPECT_TRUE(c.ping());
  const auto r = c.study(tiny_study(61));
  EXPECT_EQ(r.summary.status, Status::kOk);
  EXPECT_GT(r.records.size(), 0u);
}

TEST(ServeDaemon, ConnectionCapRejectsExcessConnections) {
  ServerOptions o = DaemonFixture::small();
  o.max_connections = 1;
  DaemonFixture d(std::move(o));

  Client first = Client::connect_unix(d.path);
  ASSERT_TRUE(first.ping());  // the single connection slot is taken

  // The next connection is accepted, told why it cannot be served, and
  // closed — never a silent hang, never an unbounded thread.
  Client second = Client::connect_unix(d.path);
  ipc::Message m;
  ASSERT_EQ(ipc::read_message(second.fd(), m), ipc::ReadStatus::kMessage);
  EXPECT_EQ(m.type, ipc::MsgType::kReject);
  const Summary s = decode_summary(m.payload);
  EXPECT_EQ(s.status, Status::kQueueFull);
  EXPECT_NE(s.detail.find("connection limit"), std::string::npos);
  EXPECT_EQ(ipc::read_message(second.fd(), m), ipc::ReadStatus::kEof);

  // The admitted connection is unaffected, and the rejection was counted.
  EXPECT_TRUE(first.ping());
  EXPECT_GE(first.stats().rejected_conn_limit, 1u);
}

TEST(ServeDaemon, TcpShutdownIsRefusedUnixShutdownWorks) {
  ServerOptions o = DaemonFixture::small();
  o.tcp_port = 0;
  DaemonFixture d(std::move(o));
  ASSERT_GT(d.server->tcp_port(), 0);

  // Shutdown over TCP: explicit bad-request reject, daemon stays up.
  Client tcp = Client::connect_tcp("127.0.0.1", d.server->tcp_port());
  const Summary refused = tcp.shutdown_server();
  EXPECT_EQ(refused.status, Status::kBadRequest);
  EXPECT_NE(refused.detail.find("Unix-domain"), std::string::npos);

  Client unix_client = Client::connect_unix(d.path);
  EXPECT_TRUE(unix_client.ping());  // still serving

  // The same request over the Unix socket drains as before.
  const Summary ack = unix_client.shutdown_server();
  EXPECT_EQ(ack.status, Status::kOk);
  d.runner.join();
}

TEST(ServeListener, RefusesToStealALiveDaemonsSocket) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  ASSERT_TRUE(c.ping());

  ServerOptions o = DaemonFixture::small();
  o.socket_path = d.path;
  EXPECT_THROW(Server second(std::move(o)), hps::Error);

  // The live daemon kept its socket and its traffic.
  EXPECT_TRUE(c.ping());
}

TEST(ServeListener, StaleSocketFileIsReclaimed) {
  const std::string path = "/tmp/hps_serve_stale_" + std::to_string(::getpid()) +
                           ".sock";
  ::unlink(path.c_str());
  // Bind a socket, then close it: the filesystem entry survives with no
  // listener behind it — exactly what a crashed daemon leaves.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ::close(fd);

  ServerOptions o = DaemonFixture::small();
  o.socket_path = path;
  EXPECT_NO_THROW({ Server reclaimed(std::move(o)); });  // stale file reclaimed
  ::unlink(path.c_str());
}

TEST(ServeDaemon, ShutdownRequestAcksThenDrains) {
  DaemonFixture d(DaemonFixture::small());
  Client c = Client::connect_unix(d.path);
  const Summary ack = c.shutdown_server();
  EXPECT_EQ(ack.status, Status::kOk);
  d.runner.join();
  EXPECT_THROW(Client::connect_unix(d.path), hps::Error);
}

}  // namespace
}  // namespace hps::serve
