// Process-isolated worker pool: crash containment, watchdog kills, retry
// with backoff, quarantine, garbage-stream classification, graceful
// interruption, and the determinism contract — a process-isolated study is
// byte-identical to the thread-pool study for healthy traces, and a SIGSEGV
// in one worker never takes the sweep down.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/runner.hpp"
#include "core/study.hpp"
#include "obs/ledger.hpp"
#include "robust/fault.hpp"
#include "robust/guard.hpp"
#include "robust/interrupt.hpp"
#include "robust/ipc.hpp"
#include "robust/journal.hpp"
#include "robust/supervisor.hpp"
#include "workloads/corpus.hpp"

namespace hps {
namespace {

using robust::SupervisorOptions;
using robust::TaskResult;
using robust::WorkerEnv;

std::string tmp_path(const std::string& stem) {
  return "/tmp/hps_sup_" + stem + "_" + std::to_string(getpid());
}

/// Every test starts and ends with a clean interrupt flag, so a test that
/// trips it cannot leak into its neighbors.
class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override { robust::clear_interrupt(); }
  void TearDown() override {
    robust::clear_interrupt();
    robust::clear_fault_plan();
  }
};

[[noreturn]] void die_by_signal(int sig) {
  // Reset to the default disposition so the death is a genuine signal even
  // under sanitizers that intercept it.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
  std::_Exit(127);  // unreachable
}

// --- run_supervised: healthy paths -----------------------------------------

TEST_F(SupervisorTest, RunsAllTasksAndReturnsPayloadsInOrder) {
  std::vector<std::string> tasks;
  for (int i = 0; i < 9; ++i) tasks.push_back("task-" + std::to_string(i));
  SupervisorOptions opts;
  opts.workers = 3;
  const auto results = robust::run_supervised(
      tasks, [](const std::string& t, const WorkerEnv& env) {
        return t + "/done/" + std::to_string(env.task_index);
      },
      opts);
  ASSERT_EQ(results.size(), tasks.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status, TaskResult::Status::kOk);
    EXPECT_EQ(results[i].payload, tasks[i] + "/done/" + std::to_string(i));
    EXPECT_EQ(results[i].attempts, 1);
  }
}

TEST_F(SupervisorTest, ResultHookFiresOncePerTask) {
  std::vector<std::size_t> seen;
  const auto results = robust::run_supervised(
      {"a", "b", "c"}, [](const std::string& t, const WorkerEnv&) { return t; },
      SupervisorOptions{},
      [&](std::size_t idx, const TaskResult& r) {
        EXPECT_EQ(r.status, TaskResult::Status::kOk);
        seen.push_back(idx);
      });
  ASSERT_EQ(results.size(), 3u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST_F(SupervisorTest, WorkerExceptionIsStructuredFailureNotCrash) {
  const auto results = robust::run_supervised(
      {"ok", "boom"},
      [](const std::string& t, const WorkerEnv&) -> std::string {
        if (t == "boom") throw Error("deliberate failure");
        return t;
      },
      SupervisorOptions{});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, TaskResult::Status::kOk);
  EXPECT_EQ(results[1].status, TaskResult::Status::kFailed);
  EXPECT_NE(results[1].detail.find("deliberate failure"), std::string::npos);
  EXPECT_EQ(results[1].signal, 0);
}

// --- crash containment and retry -------------------------------------------

TEST_F(SupervisorTest, SegvOnFirstAttemptIsRetriedToSuccess) {
  SupervisorOptions opts;
  opts.workers = 2;
  opts.max_retries = 2;
  opts.backoff_base_s = 0.01;
  const auto results = robust::run_supervised(
      {"fragile", "steady"},
      [](const std::string& t, const WorkerEnv& env) -> std::string {
        if (t == "fragile" && env.attempt == 0) die_by_signal(SIGSEGV);
        return t + "+ok";
      },
      opts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, TaskResult::Status::kOk);
  EXPECT_EQ(results[0].payload, "fragile+ok");
  EXPECT_EQ(results[0].attempts, 2) << "first attempt crashed, second succeeded";
  EXPECT_EQ(results[1].status, TaskResult::Status::kOk);
  EXPECT_EQ(results[1].attempts, 1);
}

TEST_F(SupervisorTest, PersistentCrashIsQuarantinedWithSignalAndOthersComplete) {
  SupervisorOptions opts;
  opts.workers = 2;
  opts.max_retries = 1;
  opts.backoff_base_s = 0.01;
  const auto results = robust::run_supervised(
      {"poison", "a", "b", "c"},
      [](const std::string& t, const WorkerEnv&) -> std::string {
        if (t == "poison") die_by_signal(SIGSEGV);
        return t;
      },
      opts);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].status, TaskResult::Status::kCrash);
  EXPECT_EQ(results[0].signal, SIGSEGV);
  EXPECT_EQ(results[0].attempts, 2) << "initial attempt + one retry";
  EXPECT_NE(results[0].detail.find("signal"), std::string::npos);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(results[i].status, TaskResult::Status::kOk) << results[i].detail;
    EXPECT_EQ(results[i].payload, std::string(1, static_cast<char>('a' + i - 1)));
  }
}

TEST_F(SupervisorTest, AbortDeathRecordsSigabrt) {
  SupervisorOptions opts;
  opts.max_retries = 0;
  const auto results = robust::run_supervised(
      {"x"},
      [](const std::string&, const WorkerEnv&) -> std::string { die_by_signal(SIGABRT); },
      opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, TaskResult::Status::kCrash);
  EXPECT_EQ(results[0].signal, SIGABRT);
  EXPECT_EQ(results[0].attempts, 1);
}

TEST_F(SupervisorTest, CleanExitMidTaskIsACrashVerdict) {
  SupervisorOptions opts;
  opts.max_retries = 0;
  const auto results = robust::run_supervised(
      {"x"},
      [](const std::string&, const WorkerEnv&) -> std::string { std::_Exit(0); },
      opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, TaskResult::Status::kCrash);
  EXPECT_EQ(results[0].signal, 0);
}

TEST_F(SupervisorTest, GarbageMidStreamIsClassifiedKilledAndRetried) {
  SupervisorOptions opts;
  opts.workers = 1;
  opts.max_retries = 1;
  opts.backoff_base_s = 0.01;
  const auto results = robust::run_supervised(
      {"g"},
      [](const std::string& t, const WorkerEnv& env) -> std::string {
        if (env.attempt == 0) {
          // Impersonate a worker whose heap is trashed: emit bytes that can
          // never frame (length field 0xffffffff), then stall. The
          // supervisor must classify the stream, kill us, and retry.
          const std::string garbage(16, '\xff');
          (void)!::write(robust::ipc::worker_result_fd(), garbage.data(), garbage.size());
          for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
        }
        return t + "-recovered";
      },
      opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, TaskResult::Status::kOk);
  EXPECT_EQ(results[0].payload, "g-recovered");
  EXPECT_EQ(results[0].attempts, 2);
}

// --- watchdog ---------------------------------------------------------------

TEST_F(SupervisorTest, WatchdogKillsSilentWorkerAndRetrySucceeds) {
  SupervisorOptions opts;
  opts.workers = 1;
  opts.max_retries = 1;
  opts.backoff_base_s = 0.01;
  opts.watchdog_timeout_s = 0.3;
  opts.heartbeat_interval_s = 0.05;
  const auto results = robust::run_supervised(
      {"w"},
      [](const std::string& t, const WorkerEnv& env) -> std::string {
        if (env.attempt == 0) {
          // SIGSTOP freezes the whole process, heartbeat thread included —
          // exactly the "worker wedged hard" condition the watchdog exists
          // for (a live-but-slow worker keeps heartbeating and is spared).
          std::raise(SIGSTOP);
        }
        return t + "-alive";
      },
      opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, TaskResult::Status::kOk);
  EXPECT_EQ(results[0].payload, "w-alive");
  EXPECT_EQ(results[0].attempts, 2);
}

TEST_F(SupervisorTest, WatchdogExhaustionYieldsTimeoutVerdict) {
  SupervisorOptions opts;
  opts.workers = 1;
  opts.max_retries = 0;
  opts.watchdog_timeout_s = 0.2;
  opts.heartbeat_interval_s = 0.05;
  const auto results = robust::run_supervised(
      {"w"},
      [](const std::string&, const WorkerEnv&) -> std::string {
        std::raise(SIGSTOP);
        return "unreached";
      },
      opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, TaskResult::Status::kTimeout);
  EXPECT_NE(results[0].detail.find("watchdog"), std::string::npos);
}

TEST_F(SupervisorTest, HeartbeatKeepsSlowButAliveWorkerRunning) {
  SupervisorOptions opts;
  opts.workers = 1;
  opts.max_retries = 0;
  opts.watchdog_timeout_s = 0.2;
  opts.heartbeat_interval_s = 0.05;
  const auto results = robust::run_supervised(
      {"slow"},
      [](const std::string& t, const WorkerEnv&) {
        // Three watchdog periods of honest work: the heartbeat thread keeps
        // feeding the supervisor, so no kill.
        std::this_thread::sleep_for(std::chrono::milliseconds(600));
        return t + "-finished";
      },
      opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, TaskResult::Status::kOk) << results[0].detail;
  EXPECT_EQ(results[0].payload, "slow-finished");
}

// --- interruption -----------------------------------------------------------

TEST_F(SupervisorTest, InterruptFlagSkipsEverythingNotYetFinal) {
  robust::request_interrupt(SIGINT);
  const auto results = robust::run_supervised(
      {"a", "b"}, [](const std::string& t, const WorkerEnv&) { return t; },
      SupervisorOptions{});
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_EQ(r.status, TaskResult::Status::kSkipped);
}

// --- RLIMIT_AS containment --------------------------------------------------

// ASan reserves terabytes of shadow address space, so RLIMIT_AS cannot be
// meaningfully applied under it.
#if defined(__SANITIZE_ADDRESS__)
#define HPS_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HPS_TEST_ASAN 1
#endif
#endif
#ifndef HPS_TEST_ASAN
TEST_F(SupervisorTest, RssLimitTurnsRunawayAllocIntoStructuredOom) {
  SupervisorOptions opts;
  opts.workers = 1;
  opts.max_retries = 0;
  opts.rss_limit_mb = 512;
  const auto results = robust::run_supervised(
      {"hog", "fine"},
      [](const std::string& t, const WorkerEnv&) -> std::string {
        if (t == "hog") {
          // Far past the limit; must throw bad_alloc inside the worker, not
          // trigger the kernel OOM killer on the host.
          std::vector<char> v(4ull << 30, 1);
          return std::to_string(v.size());
        }
        return t;
      },
      opts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, TaskResult::Status::kFailed);
  EXPECT_NE(results[0].detail.find("alloc"), std::string::npos) << results[0].detail;
  EXPECT_EQ(results[1].status, TaskResult::Status::kOk);
}
#endif

// --- study integration: process isolation ----------------------------------

core::StudyOptions mini_opts(int limit) {
  core::StudyOptions o;
  o.corpus.limit = limit;
  o.corpus.duration_scale = 0.1;
  o.threads = 2;
  return o;
}

void zero_walls(std::vector<core::TraceOutcome>& outcomes) {
  for (core::TraceOutcome& o : outcomes)
    for (core::SchemeOutcome& s : o.scheme) s.wall_seconds = 0;
}

std::string outcome_bytes(std::vector<core::TraceOutcome> outcomes) {
  zero_walls(outcomes);
  std::string all;
  for (const auto& o : outcomes) all += core::serialize_outcome(o);
  return all;
}

TEST_F(SupervisorTest, ProcessIsolationIsByteIdenticalToThreadMode) {
  core::StudyOptions thread_opts = mini_opts(3);
  const core::StudyResult a = core::run_study(thread_opts);

  core::StudyOptions process_opts = mini_opts(3);
  process_opts.isolate = core::IsolateMode::kProcess;
  const core::StudyResult b = core::run_study(process_opts);

  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(outcome_bytes(a.outcomes), outcome_bytes(b.outcomes))
      << "isolation mode must be observationally invisible for healthy traces";
}

TEST_F(SupervisorTest, InjectedSegvIsContainedQuarantinedAndOthersMatchThreadMode) {
  // Reference: healthy thread-mode study.
  const core::StudyResult healthy = core::run_study(mini_opts(3));
  ASSERT_EQ(healthy.outcomes.size(), 3u);

  // Poison spec 1's packet scheme with a hard SIGSEGV, then run isolated.
  robust::set_fault_plan(robust::parse_fault_plan("site=packet,spec=1,kind=segv"));
  core::StudyOptions opts = mini_opts(3);
  opts.isolate = core::IsolateMode::kProcess;
  opts.retries = 1;  // the fault is deterministic: the retry crashes too
  const core::StudyResult res = core::run_study(opts);
  robust::clear_fault_plan();

  ASSERT_EQ(res.outcomes.size(), 3u);
  // The poisoned trace is quarantined: every scheme reports the crash with
  // the terminating signal, because the worker died mid-trace.
  for (const auto& so : res.outcomes[1].scheme) {
    EXPECT_TRUE(so.attempted);
    EXPECT_FALSE(so.ok);
    EXPECT_EQ(so.fail_kind, robust::FailKind::kCrash);
    EXPECT_EQ(so.signal, SIGSEGV);
  }
  // The other traces are byte-identical to the healthy thread-mode study.
  auto ref = healthy.outcomes;
  auto got = res.outcomes;
  zero_walls(ref);
  zero_walls(got);
  EXPECT_EQ(core::serialize_outcome(got[0]), core::serialize_outcome(ref[0]));
  EXPECT_EQ(core::serialize_outcome(got[2]), core::serialize_outcome(ref[2]));
}

TEST_F(SupervisorTest, InjectedAbortIsContainedAsSigabrt) {
  robust::set_fault_plan(robust::parse_fault_plan("site=flow,spec=0,kind=abort"));
  core::StudyOptions opts = mini_opts(2);
  opts.isolate = core::IsolateMode::kProcess;
  opts.retries = 0;
  const core::StudyResult res = core::run_study(opts);
  robust::clear_fault_plan();

  ASSERT_EQ(res.outcomes.size(), 2u);
  EXPECT_EQ(res.outcomes[0].of(core::Scheme::kFlow).fail_kind, robust::FailKind::kCrash);
  EXPECT_EQ(res.outcomes[0].of(core::Scheme::kFlow).signal, SIGABRT);
  for (const auto& so : res.outcomes[1].scheme) EXPECT_TRUE(so.ok) << so.error;
}

TEST_F(SupervisorTest, CrashedTraceCarriesSignalThroughLedgerAndCache) {
  robust::set_fault_plan(robust::parse_fault_plan("site=packet,spec=0,kind=segv"));
  core::StudyOptions opts = mini_opts(1);
  opts.isolate = core::IsolateMode::kProcess;
  opts.retries = 0;
  opts.cache_path = tmp_path("crash_cache");
  opts.ledger_path = tmp_path("crash_ledger");
  opts.force_recompute = true;
  std::remove(opts.cache_path.c_str());
  std::remove(opts.ledger_path.c_str());
  const core::StudyResult res = core::run_study(opts);
  robust::clear_fault_plan();

  // The cache round-trips the signal...
  const auto cached = core::load_outcomes(opts.cache_path, core::study_cache_key(opts));
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ((*cached)[0].of(core::Scheme::kPacket).signal, SIGSEGV);
  // ...and so does the ledger (schema v3's `signal` field).
  const auto records = obs::load_ledger(opts.ledger_path);
  ASSERT_EQ(records.size(), 4u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.fail_kind, "crash");
    EXPECT_EQ(rec.signal, SIGSEGV);
  }
  (void)res;
  std::remove(opts.cache_path.c_str());
  std::remove(opts.ledger_path.c_str());
}

// --- study integration: graceful interruption ------------------------------

TEST_F(SupervisorTest, InterruptedStudySkipsKeepsJournalAndWritesNoCache) {
  core::StudyOptions opts = mini_opts(3);
  opts.journal_path = tmp_path("intr_journal");
  opts.cache_path = tmp_path("intr_cache");
  opts.force_recompute = true;
  std::remove(opts.journal_path.c_str());
  std::remove(opts.cache_path.c_str());

  robust::request_interrupt(SIGTERM);  // as if ^C landed just before the run
  const core::StudyResult res = core::run_study(opts);
  EXPECT_TRUE(res.interrupted);
  EXPECT_EQ(res.interrupt_signal, SIGTERM);
  ASSERT_EQ(res.outcomes.size(), 3u);
  for (const auto& o : res.outcomes)
    for (const auto& so : o.scheme) {
      EXPECT_FALSE(so.attempted);
      EXPECT_EQ(so.fail_kind, robust::FailKind::kSkipped);
    }
  // No cache for a hole-riddled study; journal kept for resumption.
  EXPECT_FALSE(std::filesystem::exists(opts.cache_path));
  EXPECT_TRUE(std::filesystem::exists(opts.journal_path));

  // Clearing the flag and rerunning completes the study and removes the
  // journal — the resume path the CLI documents.
  robust::clear_interrupt();
  const core::StudyResult full = core::run_study(opts);
  EXPECT_FALSE(full.interrupted);
  for (const auto& o : full.outcomes)
    for (const auto& so : o.scheme) EXPECT_TRUE(so.ok) << so.error;
  EXPECT_FALSE(std::filesystem::exists(opts.journal_path));
  std::remove(opts.cache_path.c_str());
}

TEST_F(SupervisorTest, MidRunInterruptFinishesInFlightTraceAndSkipsRest) {
  // Slow spec 0 down (400ms of injected delay in MFACT) so the interrupter
  // thread reliably lands while the study is running; single worker thread
  // makes the skip set deterministic (traces 1 and 2 never start).
  robust::set_fault_plan(
      robust::parse_fault_plan("site=mfact,spec=0,kind=delay,delay_ms=400"));
  core::StudyOptions opts = mini_opts(3);
  opts.threads = 1;
  opts.journal_path = tmp_path("midrun_journal");
  std::remove(opts.journal_path.c_str());

  std::thread interrupter([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    robust::request_interrupt(SIGINT);
  });
  const core::StudyResult res = core::run_study(opts);
  interrupter.join();
  robust::clear_fault_plan();

  EXPECT_TRUE(res.interrupted);
  ASSERT_EQ(res.outcomes.size(), 3u);
  // Traces that never started are fully skipped...
  for (std::size_t i = 1; i < 3; ++i)
    for (const auto& so : res.outcomes[i].scheme)
      EXPECT_EQ(so.fail_kind, robust::FailKind::kSkipped) << "spec " << i;
  // ...and nothing was journaled as complete that wasn't (an interrupted
  // trace must be recomputed on resume, not restored).
  robust::clear_interrupt();
  const core::StudyResult resumed = core::run_study(opts);
  EXPECT_FALSE(resumed.interrupted);
  for (const auto& o : resumed.outcomes)
    for (const auto& so : o.scheme) EXPECT_TRUE(so.ok) << so.error;
}

TEST_F(SupervisorTest, ProcessModeInterruptBeforeRunSkipsAll) {
  core::StudyOptions opts = mini_opts(2);
  opts.isolate = core::IsolateMode::kProcess;
  robust::request_interrupt(SIGINT);
  const core::StudyResult res = core::run_study(opts);
  EXPECT_TRUE(res.interrupted);
  ASSERT_EQ(res.outcomes.size(), 2u);
  for (const auto& o : res.outcomes)
    for (const auto& so : o.scheme)
      EXPECT_EQ(so.fail_kind, robust::FailKind::kSkipped);
}

}  // namespace
}  // namespace hps
