// Unit tests for the discrete-event engine: ordering, determinism on ties,
// payload delivery, run_until semantics, and statistics.
#include <gtest/gtest.h>

#include <vector>

#include "des/engine.hpp"

namespace hps::des {
namespace {

/// Records (time, a) pairs as events fire.
class Recorder final : public Handler {
 public:
  void handle(Engine& eng, std::uint64_t a, std::uint64_t b) override {
    log.push_back({eng.now(), a, b});
  }
  struct Entry {
    SimTime t;
    std::uint64_t a, b;
  };
  std::vector<Entry> log;
};

TEST(Engine, FiresInTimeOrder) {
  Engine eng;
  Recorder rec;
  eng.schedule_at(30, &rec, 3);
  eng.schedule_at(10, &rec, 1);
  eng.schedule_at(20, &rec, 2);
  eng.run();
  ASSERT_EQ(rec.log.size(), 3u);
  EXPECT_EQ(rec.log[0].a, 1u);
  EXPECT_EQ(rec.log[1].a, 2u);
  EXPECT_EQ(rec.log[2].a, 3u);
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, TiesFireInScheduleOrder) {
  Engine eng;
  Recorder rec;
  for (std::uint64_t i = 0; i < 50; ++i) eng.schedule_at(5, &rec, i);
  eng.run();
  ASSERT_EQ(rec.log.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(rec.log[i].a, i);
}

TEST(Engine, PayloadWordsDelivered) {
  Engine eng;
  Recorder rec;
  eng.schedule_at(1, &rec, 0xDEAD, 0xBEEF);
  eng.run();
  EXPECT_EQ(rec.log[0].a, 0xDEADu);
  EXPECT_EQ(rec.log[0].b, 0xBEEFu);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine eng;
  Recorder rec;
  eng.schedule_fn_at(100, [&] { eng.schedule_in(5, &rec, 7); });
  eng.run();
  ASSERT_EQ(rec.log.size(), 1u);
  EXPECT_EQ(rec.log[0].t, 105);
}

TEST(Engine, HandlersCanScheduleMore) {
  Engine eng;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) eng.schedule_fn_in(10, chain);
  };
  eng.schedule_fn_at(0, chain);
  eng.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(eng.now(), 40);
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine eng;
  Recorder rec;
  eng.schedule_at(10, &rec, 1);
  eng.schedule_at(100, &rec, 2);
  EXPECT_FALSE(eng.run_until(50));
  EXPECT_EQ(rec.log.size(), 1u);
  EXPECT_FALSE(eng.empty());
  EXPECT_TRUE(eng.run_until(1000));
  EXPECT_EQ(rec.log.size(), 2u);
}

TEST(Engine, SchedulingIntoThePastAborts) {
  Engine eng;
  Recorder rec;
  eng.schedule_fn_at(100, [&] { EXPECT_DEATH(eng.schedule_at(50, &rec, 0), "past"); });
  eng.run();
}

TEST(Engine, StatsTracked) {
  Engine eng;
  Recorder rec;
  for (int i = 0; i < 10; ++i) eng.schedule_at(i, &rec, 0);
  eng.run();
  EXPECT_EQ(eng.stats().events_processed, 10u);
  EXPECT_EQ(eng.stats().events_scheduled, 10u);
  EXPECT_GE(eng.stats().max_queue_depth, 10u);
}

TEST(Engine, ResetClears) {
  Engine eng;
  Recorder rec;
  eng.schedule_at(10, &rec, 1);
  eng.run();
  eng.reset();
  EXPECT_EQ(eng.now(), 0);
  EXPECT_TRUE(eng.empty());
  EXPECT_EQ(eng.stats().events_processed, 0u);
  // Reusable after reset.
  eng.schedule_at(3, &rec, 2);
  eng.run();
  EXPECT_EQ(eng.now(), 3);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine eng;
  Recorder rec;
  // Pseudo-random times; verify nondecreasing delivery.
  std::uint64_t x = 12345;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    eng.schedule_at(static_cast<SimTime>(x % 100000), &rec, static_cast<std::uint64_t>(i));
  }
  eng.run();
  ASSERT_EQ(rec.log.size(), 20000u);
  for (std::size_t i = 1; i < rec.log.size(); ++i)
    ASSERT_GE(rec.log[i].t, rec.log[i - 1].t);
}

TEST(Engine, FnHandlerSlotsReused) {
  Engine eng;
  int fired = 0;
  // Sequential one-shot functions should reuse pool slots, not leak.
  for (int round = 0; round < 3; ++round) {
    eng.schedule_fn_in(1, [&] { ++fired; });
    eng.run();
  }
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace hps::des
