// Robustness layer: cooperative budgets, run guards, deterministic fault
// injection, the crash-safe journal, and study-level recovery — a killed
// study resumes from its journal and reproduces the uninterrupted results
// byte for byte, and an injected failure in one scheme never contaminates
// the other traces or schemes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.hpp"
#include "core/study.hpp"
#include "des/engine.hpp"
#include "robust/cancel.hpp"
#include "robust/fault.hpp"
#include "robust/guard.hpp"
#include "robust/journal.hpp"
#include "workloads/corpus.hpp"

namespace hps {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string tmp_path(const std::string& stem) {
  return "/tmp/hps_robust_" + stem + "_" + std::to_string(getpid());
}

/// An event source that never drains: each delivery schedules the next.
struct Reschedule final : des::Handler {
  void handle(des::Engine& eng, std::uint64_t, std::uint64_t) override {
    eng.schedule_in(1, this);
  }
};

// --- CancelToken budgets ---------------------------------------------------

TEST(CancelToken, UnlimitedBudgetNeverTrips) {
  robust::Budget b;
  EXPECT_FALSE(b.limited());
  robust::CancelToken token(b);
  for (int i = 0; i < 10000; ++i) token.tick(static_cast<SimTime>(i));
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, EventCapStopsRunawayEngine) {
  des::Engine eng;
  Reschedule h;
  eng.schedule_at(0, &h);
  robust::Budget b;
  b.max_des_events = 1000;
  robust::CancelToken token(b);
  eng.set_cancel(&token);
  try {
    eng.run();
    FAIL() << "runaway engine was not cancelled";
  } catch (const robust::CancelledError& e) {
    EXPECT_EQ(e.reason(), robust::CancelReason::kEventCap);
  }
  // The calendar survives the throw: the engine stopped, it did not corrupt.
  EXPECT_FALSE(eng.empty());
  EXPECT_LE(eng.stats().events_processed, 1001u);
}

TEST(CancelToken, VirtualHorizonStopsRunawayEngine) {
  des::Engine eng;
  Reschedule h;
  eng.schedule_at(0, &h);
  robust::Budget b;
  b.virtual_horizon = 500;  // events fire at t = 0, 1, 2, ...
  robust::CancelToken token(b);
  eng.set_cancel(&token);
  try {
    eng.run();
    FAIL() << "runaway engine was not cancelled";
  } catch (const robust::CancelledError& e) {
    EXPECT_EQ(e.reason(), robust::CancelReason::kHorizon);
  }
  EXPECT_LE(eng.now(), 501);
}

TEST(CancelToken, WallDeadlineStopsRunawayEngine) {
  des::Engine eng;
  Reschedule h;
  eng.schedule_at(0, &h);
  robust::Budget b;
  b.wall_deadline_seconds = 1e-9;  // already expired at the first sampled check
  robust::CancelToken token(b);
  eng.set_cancel(&token);
  try {
    eng.run();
    FAIL() << "runaway engine was not cancelled";
  } catch (const robust::CancelledError& e) {
    EXPECT_EQ(e.reason(), robust::CancelReason::kDeadline);
  }
}

TEST(CancelToken, WallDeadlineTripsPromptlyOnSlowEventTraces) {
  // Regression: the wall clock used to be sampled on a fixed 4096-event
  // stride, so a trace processing ~2ms per event overshot a 50ms deadline by
  // ~8 seconds before the first sample. The stride is now adaptive (derived
  // from the observed event rate), so the trip must land within a small
  // multiple of the deadline even when individual events are glacial.
  robust::Budget b;
  b.wall_deadline_seconds = 0.05;
  robust::CancelToken token(b);
  const auto start = std::chrono::steady_clock::now();
  try {
    for (std::uint64_t i = 0;; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      token.tick(0);
    }
  } catch (const robust::CancelledError& e) {
    EXPECT_EQ(e.reason(), robust::CancelReason::kDeadline);
  }
  const double elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  // Generous CI margin, but far below the ~8s the fixed stride would take.
  EXPECT_LT(elapsed, 1.0) << "wall sampling stride failed to adapt";
}

TEST(CancelToken, ExternalCancelSurfacesAtNextTick) {
  robust::CancelToken token;
  token.cancel(robust::CancelReason::kInjected);
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.tick(0), robust::CancelledError);
}

// --- Guard classification --------------------------------------------------

TEST(Guard, ClassifiesExceptionTaxonomy) {
  using robust::FailKind;
  const auto kind_of = [](auto thrower) {
    const auto f = robust::run_guarded(thrower);
    EXPECT_TRUE(f.has_value());
    return f->kind;
  };
  EXPECT_EQ(kind_of([] { throw Error("boom"); }), FailKind::kError);
  EXPECT_EQ(kind_of([] { throw DeadlockError("stuck"); }), FailKind::kDeadlock);
  EXPECT_EQ(kind_of([] { throw std::bad_alloc(); }), FailKind::kOom);
  EXPECT_EQ(kind_of([] { throw std::length_error("huge"); }), FailKind::kOom);
  EXPECT_EQ(kind_of([] { throw std::runtime_error("foreign"); }), FailKind::kError);
  EXPECT_EQ(kind_of([] { throw 42; }), FailKind::kUnknown);
  EXPECT_EQ(kind_of([] {
              throw robust::CancelledError(robust::CancelReason::kEventCap, "cap");
            }),
            FailKind::kBudget);
  EXPECT_EQ(kind_of([] {
              throw robust::CancelledError(robust::CancelReason::kInjected, "inj");
            }),
            FailKind::kInjected);
  EXPECT_FALSE(robust::run_guarded([] {}).has_value());
}

TEST(Guard, FailKindNamesRoundTrip) {
  EXPECT_STREQ(robust::fail_kind_name(robust::FailKind::kNone), "none");
  EXPECT_STREQ(robust::fail_kind_name(robust::FailKind::kSkipped), "skipped");
  EXPECT_STREQ(robust::fail_kind_name(robust::FailKind::kBudget), "budget");
  EXPECT_STREQ(robust::fail_kind_name(robust::FailKind::kInjected), "injected");
}

// --- Fault plan parsing and matching ---------------------------------------

TEST(FaultPlan, ParsesGrammar) {
  const auto plan =
      robust::parse_fault_plan("site=packet,spec=3,kind=alloc;site=generate,kind=throw");
  ASSERT_EQ(plan.specs.size(), 2u);
  EXPECT_EQ(plan.specs[0].site, robust::FaultSite::kPacket);
  EXPECT_EQ(plan.specs[0].spec_id, 3);
  EXPECT_EQ(plan.specs[0].kind, robust::FaultKind::kAllocFail);
  EXPECT_EQ(plan.specs[0].scheme, -1);
  EXPECT_EQ(plan.specs[1].site, robust::FaultSite::kGenerate);
  EXPECT_EQ(plan.specs[1].kind, robust::FaultKind::kThrow);

  const auto full = robust::parse_fault_plan(
      "site=mfact,scheme=mfact,kind=delay,delay_ms=5,p=0.25,seed=7,exit_code=9");
  ASSERT_EQ(full.specs.size(), 1u);
  EXPECT_EQ(full.specs[0].scheme, 0);
  EXPECT_EQ(full.specs[0].delay_ms, 5);
  EXPECT_DOUBLE_EQ(full.specs[0].probability, 0.25);
  EXPECT_EQ(full.specs[0].seed, 7u);
  EXPECT_EQ(full.specs[0].exit_code, 9);

  EXPECT_THROW(robust::parse_fault_plan("site=warp"), Error);
  EXPECT_THROW(robust::parse_fault_plan("kind=throw"), Error);
  EXPECT_THROW(robust::parse_fault_plan("site=packet,kind=frobnicate"), Error);
  EXPECT_THROW(robust::parse_fault_plan("site=packet,wat=1"), Error);
  EXPECT_TRUE(robust::parse_fault_plan("").empty());
}

TEST(FaultPlan, FaultPointMatchesContext) {
  robust::FaultPlan plan;
  robust::FaultSpec f;
  f.site = robust::FaultSite::kPacket;
  f.spec_id = 2;
  f.kind = robust::FaultKind::kThrow;
  plan.specs.push_back(f);
  robust::set_fault_plan(plan);

  // No ambient context: spec filter does not match; nothing fires.
  robust::fault_point(robust::FaultSite::kPacket);

  {
    robust::FaultContext ctx;
    ctx.spec_id = 2;
    robust::FaultScope scope(ctx);
    robust::fault_point(robust::FaultSite::kFlow);  // wrong site: no fire
    EXPECT_THROW(robust::fault_point(robust::FaultSite::kPacket), Error);
  }
  // Scope restored: no longer matching.
  robust::fault_point(robust::FaultSite::kPacket);
  robust::clear_fault_plan();
  EXPECT_FALSE(robust::fault_plan_active());
}

TEST(FaultPlan, ProbabilisticSelectionIsDeterministic) {
  robust::FaultPlan plan;
  robust::FaultSpec f;
  f.site = robust::FaultSite::kPacket;
  f.kind = robust::FaultKind::kThrow;
  f.probability = 0.5;
  f.seed = 99;
  plan.specs.push_back(f);
  robust::set_fault_plan(plan);

  const auto fires = [&](int spec_id) {
    robust::FaultContext ctx;
    ctx.spec_id = spec_id;
    robust::FaultScope scope(ctx);
    try {
      robust::fault_point(robust::FaultSite::kPacket);
      return false;
    } catch (const Error&) {
      return true;
    }
  };
  std::vector<bool> first, second;
  int hit = 0;
  for (int i = 0; i < 32; ++i) {
    first.push_back(fires(i));
    if (first.back()) ++hit;
  }
  for (int i = 0; i < 32; ++i) second.push_back(fires(i));
  EXPECT_EQ(first, second) << "hashed selection must be reproducible";
  EXPECT_GT(hit, 0);
  EXPECT_LT(hit, 32);
  robust::clear_fault_plan();
}

TEST(FaultPlan, InitFromEnv) {
  ASSERT_EQ(setenv("HPS_FAULT", "site=generate,kind=throw", 1), 0);
  robust::init_faults_from_env();
  EXPECT_TRUE(robust::fault_plan_active());
  robust::clear_fault_plan();
  ASSERT_EQ(unsetenv("HPS_FAULT"), 0);
}

// --- Journal ---------------------------------------------------------------

TEST(Journal, Crc32KnownAnswer) {
  const char data[] = "123456789";
  EXPECT_EQ(robust::crc32(data, 9), 0xCBF43926u);
}

TEST(Journal, RoundTrip) {
  const std::string path = tmp_path("journal_rt");
  std::remove(path.c_str());
  {
    robust::JournalWriter w;
    w.open_fresh(path, "key-1");
    w.append("alpha");
    w.append("");  // empty records are legal
    w.append(std::string("\x00\x01\xff binary", 10));
  }
  const auto back = robust::read_journal(path, "key-1");
  EXPECT_TRUE(back.existed);
  EXPECT_TRUE(back.key_matched);
  ASSERT_EQ(back.records.size(), 3u);
  EXPECT_EQ(back.records[0], "alpha");
  EXPECT_EQ(back.records[1], "");
  EXPECT_EQ(back.records[2], std::string("\x00\x01\xff binary", 10));
  EXPECT_EQ(back.torn_bytes, 0u);

  // A different key must refuse to resume.
  const auto wrong = robust::read_journal(path, "key-2");
  EXPECT_TRUE(wrong.existed);
  EXPECT_FALSE(wrong.key_matched);
  EXPECT_TRUE(wrong.records.empty());

  // Missing file: existed=false.
  EXPECT_FALSE(robust::read_journal(path + ".nope", "key-1").existed);
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsDiscardedAndResumable) {
  const std::string path = tmp_path("journal_torn");
  std::remove(path.c_str());
  {
    robust::JournalWriter w;
    w.open_fresh(path, "k");
    w.append("one");
    w.append("two");
  }
  // Simulate a crash mid-append: a partial frame at the tail.
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write("\x40\x00\x00\x00garbage", 11);
  }
  const auto torn = robust::read_journal(path, "k");
  ASSERT_EQ(torn.records.size(), 2u);
  EXPECT_GT(torn.torn_bytes, 0u);

  // Resume truncates the torn tail; new appends extend the intact prefix.
  {
    robust::JournalWriter w;
    w.open_resume(path, torn.valid_bytes);
    w.append("three");
  }
  const auto resumed = robust::read_journal(path, "k");
  ASSERT_EQ(resumed.records.size(), 3u);
  EXPECT_EQ(resumed.records[2], "three");
  EXPECT_EQ(resumed.torn_bytes, 0u);
  std::remove(path.c_str());
}

TEST(Journal, CorruptedRecordStopsTheValidPrefix) {
  const std::string path = tmp_path("journal_corrupt");
  std::remove(path.c_str());
  {
    robust::JournalWriter w;
    w.open_fresh(path, "k");
    w.append("good");
    w.append("flipped");
  }
  // Flip one payload byte of the second record; its CRC no longer matches.
  {
    std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
    fs.seekp(-1, std::ios::end);
    fs.put('X');
  }
  const auto back = robust::read_journal(path, "k");
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_EQ(back.records[0], "good");
  EXPECT_GT(back.torn_bytes, 0u);
  std::remove(path.c_str());
}

// --- Outcome codec and atomic cache save -----------------------------------

TEST(StudyCodec, OutcomeRoundTripPreservesFailKind) {
  core::TraceOutcome o;
  o.spec_id = 7;
  o.app = "lulesh";
  o.machine = "hopper";
  o.ranks = 64;
  auto& so = o.of(core::Scheme::kPacket);
  so.attempted = true;
  so.ok = false;
  so.error = "injected cancel at site packet";
  so.fail_kind = robust::FailKind::kInjected;
  so.total_time = 12345;
  const core::TraceOutcome back = core::deserialize_outcome(core::serialize_outcome(o));
  EXPECT_EQ(back.spec_id, 7);
  EXPECT_EQ(back.app, "lulesh");
  EXPECT_EQ(back.of(core::Scheme::kPacket).fail_kind, robust::FailKind::kInjected);
  EXPECT_EQ(back.of(core::Scheme::kPacket).error, "injected cancel at site packet");
  EXPECT_EQ(back.of(core::Scheme::kMfact).fail_kind, robust::FailKind::kNone);

  EXPECT_THROW(core::deserialize_outcome("short"), Error);
  EXPECT_THROW(core::deserialize_outcome(core::serialize_outcome(o) + "x"), Error);
}

TEST(StudyCodec, SaveOutcomesIsAtomic) {
  const std::string path = tmp_path("cache_atomic");
  std::remove(path.c_str());
  std::vector<core::TraceOutcome> outcomes(2);
  outcomes[0].spec_id = 0;
  outcomes[1].spec_id = 1;
  core::save_outcomes(outcomes, path, 11);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "temp file must be renamed away";
  const auto loaded = core::load_outcomes(path, 11);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  // Overwrite in place still goes through the temp file.
  core::save_outcomes(outcomes, path, 12);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_FALSE(core::load_outcomes(path, 11).has_value());
  EXPECT_TRUE(core::load_outcomes(path, 12).has_value());
  std::remove(path.c_str());
}

// --- Budgets and faults through the runner / study -------------------------

core::StudyOptions mini_opts(int limit) {
  core::StudyOptions o;
  o.corpus.limit = limit;
  o.corpus.duration_scale = 0.1;
  o.threads = 2;
  return o;
}

void zero_walls(std::vector<core::TraceOutcome>& outcomes) {
  for (core::TraceOutcome& o : outcomes)
    for (core::SchemeOutcome& s : o.scheme) s.wall_seconds = 0;
}

TEST(RobustStudy, BudgetExceededDegradesToStructuredOutcome) {
  const auto specs = workloads::build_corpus_specs(mini_opts(1).corpus);
  ASSERT_FALSE(specs.empty());
  core::RunOptions ro;
  ro.budget.max_des_events = 500;  // far below any real replay
  const core::TraceOutcome out = core::run_all_schemes(specs[0], ro);
  const auto& packet = out.of(core::Scheme::kPacket);
  ASSERT_TRUE(packet.attempted);
  EXPECT_FALSE(packet.ok);
  EXPECT_EQ(packet.fail_kind, robust::FailKind::kBudget);
  EXPECT_FALSE(packet.error.empty());
  // Partial progress was harvested off the cancelled replay.
  EXPECT_GT(packet.des_events, 0u);
  EXPECT_GT(packet.total_time, 0);
  // Every attempted scheme either finished or tripped the budget — nothing
  // escaped as an unstructured failure.
  for (const auto& so : out.scheme) {
    if (!so.attempted || so.ok) continue;
    EXPECT_EQ(so.fail_kind, robust::FailKind::kBudget) << so.error;
  }
}

TEST(RobustStudy, InjectedFaultIsIsolatedToItsTarget) {
  // Inject an allocation failure into the packet model of spec 1 only.
  robust::FaultPlan plan;
  robust::FaultSpec f;
  f.site = robust::FaultSite::kPacket;
  f.spec_id = 1;
  f.kind = robust::FaultKind::kAllocFail;
  plan.specs.push_back(f);
  robust::set_fault_plan(plan);

  core::StudyResult res = core::run_study(mini_opts(3));
  robust::clear_fault_plan();

  ASSERT_EQ(res.outcomes.size(), 3u);
  const auto& hit = res.outcomes[1].of(core::Scheme::kPacket);
  EXPECT_TRUE(hit.attempted);
  EXPECT_FALSE(hit.ok);
  EXPECT_EQ(hit.fail_kind, robust::FailKind::kOom);
  // Every other trace×scheme completed untouched.
  for (std::size_t i = 0; i < res.outcomes.size(); ++i) {
    for (int si = 0; si < static_cast<int>(core::Scheme::kNumSchemes); ++si) {
      if (i == 1 && si == static_cast<int>(core::Scheme::kPacket)) continue;
      const auto& so = res.outcomes[i].scheme[si];
      EXPECT_TRUE(so.ok) << "spec " << i << " scheme " << si << ": " << so.error;
      EXPECT_EQ(so.fail_kind, robust::FailKind::kNone);
    }
  }
}

TEST(RobustStudy, FailedGenerationFailsAllSchemesStructurally) {
  robust::FaultPlan plan;
  robust::FaultSpec f;
  f.site = robust::FaultSite::kGenerate;
  f.spec_id = 0;
  f.kind = robust::FaultKind::kThrow;
  plan.specs.push_back(f);
  robust::set_fault_plan(plan);

  core::StudyResult res = core::run_study(mini_opts(2));
  robust::clear_fault_plan();

  ASSERT_EQ(res.outcomes.size(), 2u);
  for (const auto& so : res.outcomes[0].scheme) {
    EXPECT_FALSE(so.attempted);
    EXPECT_FALSE(so.ok);
    EXPECT_EQ(so.fail_kind, robust::FailKind::kError);
    EXPECT_NE(so.error.find("trace generation failed"), std::string::npos);
  }
  for (const auto& so : res.outcomes[1].scheme) EXPECT_TRUE(so.ok) << so.error;
}

TEST(RobustStudy, ResumesFromJournalByteIdentically) {
  // Reference: the uninterrupted study.
  core::StudyOptions opts = mini_opts(4);
  core::StudyResult reference = core::run_study(opts);
  ASSERT_EQ(reference.outcomes.size(), 4u);
  zero_walls(reference.outcomes);

  // Simulate a run killed after completing specs 0 and 2: hand-build the
  // journal a crashed worker pool would have left behind.
  const std::uint64_t key = core::study_cache_key(opts);
  char keyhex[24];
  std::snprintf(keyhex, sizeof keyhex, "%016llx", static_cast<unsigned long long>(key));
  const std::string journal_path = tmp_path("journal_resume");
  std::remove(journal_path.c_str());
  {
    robust::JournalWriter w;
    w.open_fresh(journal_path, keyhex);
    w.append(core::serialize_outcome(reference.outcomes[0]));
    w.append(core::serialize_outcome(reference.outcomes[2]));
  }

  core::StudyOptions resume_opts = opts;
  resume_opts.journal_path = journal_path;
  core::StudyResult resumed = core::run_study(resume_opts);
  EXPECT_EQ(resumed.resumed_from_journal, 2);
  zero_walls(resumed.outcomes);

  // The resumed study must reproduce the uninterrupted one byte for byte
  // (wall_seconds excluded, per the determinism contract).
  const std::string pa = tmp_path("resume_ref.bin");
  const std::string pb = tmp_path("resume_new.bin");
  core::save_outcomes(reference.outcomes, pa, key);
  core::save_outcomes(resumed.outcomes, pb, key);
  EXPECT_EQ(slurp(pa), slurp(pb)) << "journal resume changed study results";
  std::remove(pa.c_str());
  std::remove(pb.c_str());

  // A completed study removes its journal.
  EXPECT_FALSE(std::filesystem::exists(journal_path));
}

TEST(RobustStudy, StaleJournalWithForeignKeyIsIgnored) {
  core::StudyOptions opts = mini_opts(2);
  opts.journal_path = tmp_path("journal_stale");
  std::remove(opts.journal_path.c_str());
  {
    robust::JournalWriter w;
    w.open_fresh(opts.journal_path, "a-key-from-another-study");
    w.append("not an outcome");
  }
  core::StudyResult res = core::run_study(opts);
  EXPECT_EQ(res.resumed_from_journal, 0);
  ASSERT_EQ(res.outcomes.size(), 2u);
  for (const auto& o : res.outcomes)
    for (const auto& so : o.scheme) EXPECT_TRUE(so.ok) << so.error;
  EXPECT_FALSE(std::filesystem::exists(opts.journal_path));
}

}  // namespace
}  // namespace hps
