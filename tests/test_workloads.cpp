// Tests for the workload generators: every app produces a structurally
// valid trace at several rank counts (a parameterized sweep runs the full
// validator), determinism per seed, knob behavior, ground-truth plausibility
// and corpus construction matching Table I(a).
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/validate.hpp"
#include "workloads/corpus.hpp"
#include "workloads/generators.hpp"
#include "workloads/ground_truth.hpp"
#include "workloads/pattern_helpers.hpp"

namespace hps::workloads {
namespace {

TEST(Helpers, GridFactorizations) {
  EXPECT_EQ(grid2d(64), (std::array<int, 2>{8, 8}));
  EXPECT_EQ(grid2d(12), (std::array<int, 2>{4, 3}));
  EXPECT_EQ(grid2d(7), (std::array<int, 2>{7, 1}));
  const auto g = grid3d(64);
  EXPECT_EQ(g[0] * g[1] * g[2], 64);
  EXPECT_EQ(g, (std::array<int, 3>{4, 4, 4}));
  const auto h = grid3d(100);
  EXPECT_EQ(h[0] * h[1] * h[2], 100);
}

TEST(Helpers, IntegerRoots) {
  EXPECT_EQ(isqrt_floor(63), 7);
  EXPECT_EQ(isqrt_floor(64), 8);
  EXPECT_EQ(icbrt_floor(63), 3);
  EXPECT_EQ(icbrt_floor(64), 4);
  EXPECT_TRUE(is_square(1024));
  EXPECT_FALSE(is_square(1000));
  EXPECT_TRUE(is_cube(1728));
  EXPECT_FALSE(is_cube(1729));
  EXPECT_TRUE(is_pow2(512));
  EXPECT_FALSE(is_pow2(513));
}

TEST(Helpers, Neighbors3dSymmetric) {
  for (int r = 0; r < 24; ++r) {
    const auto nb = neighbors3d(r, 4, 3, 2);
    for (const Rank n : nb) {
      const auto back = neighbors3d(n, 4, 3, 2);
      EXPECT_NE(std::find(back.begin(), back.end(), static_cast<Rank>(r)), back.end())
          << "asymmetric neighbor relation between " << r << " and " << n;
    }
  }
}

TEST(Helpers, ComputeModelSkewPersists) {
  ComputeModel cm(8, 1000000, 0.3, 0.01, 42);
  // Two samples from the same rank should be close (small noise), while the
  // cross-rank spread reflects the persistent skew.
  for (Rank r = 0; r < 8; ++r) {
    const double a = static_cast<double>(cm.sample(r));
    const double b = static_cast<double>(cm.sample(r));
    EXPECT_NEAR(a / b, 1.0, 0.1);
  }
}

TEST(GroundTruth, CostsScaleWithSize) {
  GroundTruthParams p;
  GroundTruth gt(p, 1);
  EXPECT_GT(gt.send(1000000), gt.send(1000));
  EXPECT_GT(gt.recv(1000000), gt.recv(1000));
  EXPECT_GT(gt.collective(trace::OpType::kAllreduce, 64, 1 << 20),
            gt.collective(trace::OpType::kAllreduce, 64, 64));
}

TEST(GroundTruth, InflationRaisesCosts) {
  GroundTruthParams p;
  p.noise_sigma = 0.0;
  GroundTruth a(p, 1);
  p.contention_inflation = 2.0;
  GroundTruth b(p, 1);
  EXPECT_GT(b.recv(100000), a.recv(100000) * 3 / 2);
}

TEST(Generators, RegistryComplete) {
  const auto names = all_app_names();
  EXPECT_EQ(names.size(), 19u);  // 9 NPB + 10 DOE
  for (const auto& n : names) EXPECT_EQ(generator_by_name(n).name(), n);
  EXPECT_THROW(generator_by_name("NoSuchApp"), Error);
}

TEST(Generators, RankShapeConstraints) {
  EXPECT_TRUE(generator_by_name("FT").supports_ranks(256));
  EXPECT_FALSE(generator_by_name("FT").supports_ranks(100));
  EXPECT_TRUE(generator_by_name("CG").supports_ranks(144));
  EXPECT_FALSE(generator_by_name("CG").supports_ranks(128));
  EXPECT_TRUE(generator_by_name("LULESH").supports_ranks(216));
  EXPECT_FALSE(generator_by_name("LULESH").supports_ranks(200));
  EXPECT_TRUE(generator_by_name("EP").supports_ranks(97));
}

TEST(Generators, PickRanksWithinBucket) {
  const auto& lulesh = generator_by_name("LULESH");
  EXPECT_EQ(lulesh.pick_ranks(129, 256), 216);
  EXPECT_EQ(lulesh.pick_ranks(217, 300), -1);
  const auto& ft = generator_by_name("FT");
  EXPECT_EQ(ft.pick_ranks(65, 128), 128);
}

struct GenCase {
  std::string app;
  Rank ranks;
};

class AllGenerators : public ::testing::TestWithParam<GenCase> {};

TEST_P(AllGenerators, ProducesValidNonTrivialTrace) {
  GenParams p;
  p.ranks = GetParam().ranks;
  p.seed = 77;
  p.iter_factor = 0.3;  // keep the sweep fast
  const trace::Trace t = generate_app(GetParam().app, p);
  EXPECT_EQ(t.nranks(), p.ranks);
  EXPECT_TRUE(trace::validate(t).empty());
  EXPECT_GT(t.total_events(), static_cast<std::uint64_t>(p.ranks));
  EXPECT_GT(t.measured_total(), 0);
  // Every rank does something.
  for (Rank r = 0; r < t.nranks(); ++r) EXPECT_FALSE(t.rank(r).events.empty());
}

std::vector<GenCase> generator_cases() {
  std::vector<GenCase> cases;
  std::set<std::pair<std::string, Rank>> seen;
  for (const auto& app : all_app_names()) {
    const auto& gen = generator_by_name(app);
    for (const Rank want : {16, 64, 90}) {
      const Rank r = gen.pick_ranks(8, want);
      if (r > 0 && seen.insert({app, r}).second) cases.push_back({app, r});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Apps, AllGenerators, ::testing::ValuesIn(generator_cases()),
                         [](const ::testing::TestParamInfo<GenCase>& info) {
                           return info.param.app + "_" + std::to_string(info.param.ranks);
                         });

TEST(Generators, DeterministicPerSeed) {
  GenParams p;
  p.ranks = 16;
  p.seed = 5;
  p.iter_factor = 0.2;
  const auto a = generate_app("MiniFE", p);
  const auto b = generate_app("MiniFE", p);
  EXPECT_EQ(a.total_events(), b.total_events());
  EXPECT_EQ(a.measured_total(), b.measured_total());
  p.seed = 6;
  const auto c = generate_app("MiniFE", p);
  EXPECT_NE(a.measured_total(), c.measured_total());
}

TEST(Generators, IterFactorScalesLength) {
  GenParams p;
  p.ranks = 16;
  p.seed = 5;
  p.iter_factor = 0.25;
  const auto short_t = generate_app("Nekbone", p);
  p.iter_factor = 1.0;
  const auto long_t = generate_app("Nekbone", p);
  EXPECT_GT(long_t.total_events(), 2 * short_t.total_events());
}

TEST(Generators, SizeFactorScalesVolume) {
  GenParams p;
  p.ranks = 16;
  p.seed = 5;
  p.iter_factor = 0.2;
  p.size_factor = 0.5;
  const auto small = generate_app("FT", p);
  p.size_factor = 2.0;
  const auto big = generate_app("FT", p);
  const auto ssmall = trace::compute_stats(small);
  const auto sbig = trace::compute_stats(big);
  EXPECT_GT(sbig.bytes_total, 2 * ssmall.bytes_total);
}

TEST(Generators, MachineAffectsMeasuredTimes) {
  GenParams p;
  p.ranks = 16;
  p.seed = 5;
  p.iter_factor = 0.2;
  p.machine = "cielito";  // 10 Gbps
  const auto slow = generate_app("CR", p);
  p.machine = "hopper";  // 35 Gbps
  const auto fast = generate_app("CR", p);
  EXPECT_GT(slow.measured_comm_mean(), fast.measured_comm_mean());
}

TEST(Corpus, MatchesTable1aDistribution) {
  const auto specs = build_corpus_specs({});
  EXPECT_EQ(specs.size(), 235u);
  std::map<int, int> bucket_count;
  for (const auto& s : specs) {
    int b = 0;
    for (const auto& bucket : table1a_buckets()) {
      if (s.params.ranks >= bucket.lo && s.params.ranks <= bucket.hi) break;
      ++b;
    }
    ++bucket_count[b];
  }
  const auto buckets = table1a_buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i)
    EXPECT_EQ(bucket_count[static_cast<int>(i)], buckets[i].count) << "bucket " << i;
}

TEST(Corpus, SpecsAreDiverse) {
  const auto specs = build_corpus_specs({});
  std::set<std::string> apps;
  std::set<std::string> machines;
  std::set<std::uint64_t> seeds;
  for (const auto& s : specs) {
    apps.insert(s.app);
    machines.insert(s.params.machine);
    seeds.insert(s.params.seed);
  }
  EXPECT_GE(apps.size(), 15u);
  EXPECT_EQ(machines.size(), 3u);
  EXPECT_EQ(seeds.size(), specs.size()) << "seeds must be unique per trace";
}

TEST(Corpus, LimitOption) {
  workloads::CorpusOptions opts;
  opts.limit = 7;
  EXPECT_EQ(build_corpus_specs(opts).size(), 7u);
}

TEST(Corpus, SpecsGenerateValidTraces) {
  workloads::CorpusOptions opts;
  opts.limit = 4;
  opts.duration_scale = 0.15;
  for (const auto& spec : build_corpus_specs(opts)) {
    const auto t = generate_spec(spec);
    EXPECT_EQ(t.nranks(), spec.params.ranks);
    EXPECT_TRUE(trace::validate(t).empty());
  }
}

TEST(Calibration, MeasuredRankTotalsBalanceUnderSync) {
  // Apps with a per-iteration global collective fold each rank's wait into
  // the measured collective duration, so per-rank measured totals should be
  // close even under compute imbalance (what real MPI profiles show).
  GenParams p;
  p.seed = 21;
  p.iter_factor = 0.3;
  for (const char* app : {"CG", "MultiGrid", "CMC", "LULESH"}) {
    p.ranks = generator_by_name(app).pick_ranks(25, 40);  // 36/32/32/27
    ASSERT_GT(p.ranks, 0) << app;
    const trace::Trace t = generate_app(app, p);
    SimTime min_total = kSimTimeMax, max_total = 0;
    for (Rank r = 0; r < t.nranks(); ++r) {
      SimTime total = 0;
      for (const auto& e : t.rank(r).events) total += e.duration;
      min_total = std::min(min_total, total);
      max_total = std::max(max_total, total);
    }
    EXPECT_LT(static_cast<double>(max_total) / static_cast<double>(min_total), 1.25)
        << app << ": measured rank totals should be balanced by folded-in waits";
  }
}

TEST(Calibration, CommIntensitySpectrumCovered) {
  // At 64 ranks the family must span compute-bound to comm-dominated.
  GenParams p;
  p.ranks = 64;
  p.seed = 22;
  p.iter_factor = 0.3;
  double min_frac = 1.0, max_frac = 0.0;
  for (const auto& app : all_app_names()) {
    const auto& gen = generator_by_name(app);
    if (!gen.supports_ranks(64)) continue;
    const auto t = generate_app(app, p);
    const auto st = trace::compute_stats(t);
    min_frac = std::min(min_frac, st.comm_fraction());
    max_frac = std::max(max_frac, st.comm_fraction());
  }
  EXPECT_LT(min_frac, 0.02) << "need a computation-bound extreme (EP)";
  EXPECT_GT(max_frac, 0.40) << "need a communication-dominated extreme";
}

TEST(Calibration, StrongScalingRaisesCommShare) {
  // The same code at 4x the ranks must be more communication-intensive —
  // the axis along which the corpus spreads Table I(b).
  GenParams small;
  small.ranks = 64;
  small.seed = 23;
  small.iter_factor = 0.3;
  GenParams big = small;
  big.ranks = 256;
  for (const char* app : {"MiniFE", "Nekbone", "MG"}) {
    const auto ts = generate_app(app, small);
    const auto tb = generate_app(app, big);
    EXPECT_GT(trace::compute_stats(tb).comm_fraction(),
              trace::compute_stats(ts).comm_fraction())
        << app;
  }
}

}  // namespace
}  // namespace hps::workloads
