// Tests for the collective-to-point-to-point decomposition: for every
// algorithm and a sweep of communicator sizes, the per-rank schedules must
// mutually match (every Isend has exactly one matching Recv in the same
// round structure), be deadlock-free under blocking semantics, and move the
// right amount of data.
#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <vector>

#include "simmpi/collectives.hpp"

namespace hps::simmpi {
namespace {

using trace::OpType;

/// Expand the collective for every rank of an n-member communicator.
std::vector<std::vector<SubOp>> expand_all(OpType op, int n, std::uint64_t bytes, int root,
                                           const CollectiveAlgos& algos = {}) {
  std::vector<std::vector<SubOp>> out(static_cast<std::size_t>(n));
  for (int me = 0; me < n; ++me) {
    CollectiveDesc d;
    d.op = op;
    d.n = n;
    d.me = me;
    d.root = root;
    d.bytes = bytes;
    expand_collective(d, algos, out[static_cast<std::size_t>(me)]);
  }
  return out;
}

/// Simulate blocking execution of the schedules; returns total bytes moved,
/// asserts no deadlock and full consumption. This is an abstract executor:
/// recv blocks until the matching isend was *issued* (sends are nonblocking).
std::uint64_t execute(const std::vector<std::vector<SubOp>>& scheds) {
  const int n = static_cast<int>(scheds.size());
  std::vector<std::size_t> pc(static_cast<std::size_t>(n), 0);
  std::vector<int> outstanding(static_cast<std::size_t>(n), 0);
  // sent[from][to] = queue of byte counts, FIFO.
  std::map<std::pair<int, int>, std::queue<std::uint64_t>> sent;
  std::uint64_t total_bytes = 0;

  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < n; ++r) {
      auto& cursor = pc[static_cast<std::size_t>(r)];
      const auto& sched = scheds[static_cast<std::size_t>(r)];
      while (cursor < sched.size()) {
        const SubOp& op = sched[cursor];
        if (op.kind == SubOp::Kind::kIsend) {
          sent[{r, op.peer}].push(op.bytes);
          ++outstanding[static_cast<std::size_t>(r)];
          total_bytes += op.bytes;
        } else if (op.kind == SubOp::Kind::kRecv) {
          auto it = sent.find({op.peer, r});
          if (it == sent.end() || it->second.empty()) break;  // blocked
          EXPECT_EQ(it->second.front(), op.bytes)
              << "rank " << r << " expects " << op.bytes << " from " << op.peer;
          it->second.pop();
        } else if (op.kind == SubOp::Kind::kWaitOne) {
          EXPECT_GT(outstanding[static_cast<std::size_t>(r)], 0);
          --outstanding[static_cast<std::size_t>(r)];
        } else {  // kWaitAll
          outstanding[static_cast<std::size_t>(r)] = 0;
        }
        ++cursor;
        progress = true;
      }
    }
  }
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(pc[static_cast<std::size_t>(r)], scheds[static_cast<std::size_t>(r)].size())
        << "rank " << r << " deadlocked";
  // Every sent message consumed.
  for (const auto& [key, q] : sent)
    EXPECT_TRUE(q.empty()) << "unconsumed messages from " << key.first << " to " << key.second;
  return total_bytes;
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BarrierCompletes) {
  const int n = GetParam();
  execute(expand_all(OpType::kBarrier, n, 0, 0));
}

TEST_P(CollectiveSizes, BcastMovesPayloadToAll) {
  const int n = GetParam();
  for (const int root : {0, n / 2, n - 1}) {
    const auto scheds = expand_all(OpType::kBcast, n, 1000, root);
    // Binomial tree: exactly n-1 transfers of the payload.
    EXPECT_EQ(execute(scheds), static_cast<std::uint64_t>(n - 1) * 1000u);
    // Root receives nothing.
    for (const auto& op : scheds[static_cast<std::size_t>(root)])
      EXPECT_NE(op.kind, SubOp::Kind::kRecv);
  }
}

TEST_P(CollectiveSizes, ReduceMirrorsBcast) {
  const int n = GetParam();
  for (const int root : {0, n - 1}) {
    const auto scheds = expand_all(OpType::kReduce, n, 500, root);
    EXPECT_EQ(execute(scheds), static_cast<std::uint64_t>(n - 1) * 500u);
    for (const auto& op : scheds[static_cast<std::size_t>(root)])
      EXPECT_NE(op.kind, SubOp::Kind::kIsend);
  }
}

TEST_P(CollectiveSizes, AllreduceRecursiveDoublingCompletes) {
  const int n = GetParam();
  CollectiveAlgos algos;
  algos.allreduce_rabenseifner_threshold = 1 << 30;  // force recursive doubling
  execute(expand_all(OpType::kAllreduce, n, 4096, 0, algos));
}

TEST_P(CollectiveSizes, AllreduceRabenseifnerCompletes) {
  const int n = GetParam();
  CollectiveAlgos algos;
  algos.allreduce_rabenseifner_threshold = 1;  // force Rabenseifner
  execute(expand_all(OpType::kAllreduce, n, 1 << 20, 0, algos));
}

TEST_P(CollectiveSizes, AllgatherRingVolume) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  const auto scheds = expand_all(OpType::kAllgather, n, 256, 0);
  // Ring: n ranks x (n-1) rounds x 256 bytes.
  EXPECT_EQ(execute(scheds), static_cast<std::uint64_t>(n) * (n - 1) * 256u);
}

TEST_P(CollectiveSizes, AlltoallPairwiseVolume) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  const auto scheds = expand_all(OpType::kAlltoall, n, 128, 0);
  EXPECT_EQ(execute(scheds), static_cast<std::uint64_t>(n) * (n - 1) * 128u);
}

TEST_P(CollectiveSizes, AlltoallBruckCompletes) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  CollectiveAlgos algos;
  algos.alltoall = CollectiveAlgos::Alltoall::kBruck;
  execute(expand_all(OpType::kAlltoall, n, 128, 0, algos));
}

TEST_P(CollectiveSizes, ReduceScatterCompletes) {
  const int n = GetParam();
  execute(expand_all(OpType::kReduceScatter, n, 4096 * static_cast<unsigned>(n), 0));
}

TEST_P(CollectiveSizes, ScanIsLinearChain) {
  const int n = GetParam();
  const auto scheds = expand_all(OpType::kScan, n, 512, 0);
  // Total volume: n-1 hops of the payload.
  EXPECT_EQ(execute(scheds), static_cast<std::uint64_t>(n - 1) * 512u);
  // Rank 0 never receives; the last rank never sends.
  for (const auto& op : scheds[0]) EXPECT_NE(op.kind, SubOp::Kind::kRecv);
  for (const auto& op : scheds[static_cast<std::size_t>(n - 1)])
    EXPECT_NE(op.kind, SubOp::Kind::kIsend);
}

TEST_P(CollectiveSizes, GatherScatterComplete) {
  const int n = GetParam();
  const auto g = expand_all(OpType::kGather, n, 64, 0);
  const auto s = expand_all(OpType::kScatter, n, 64, 0);
  // Tree gather/scatter move each rank's block once per tree edge traversal;
  // total volume is at least the sum of all non-root blocks.
  EXPECT_GE(execute(g), static_cast<std::uint64_t>(n - 1) * 64u);
  EXPECT_GE(execute(s), static_cast<std::uint64_t>(n - 1) * 64u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 13, 16, 17, 31, 32, 33, 64, 100),
                         [](const ::testing::TestParamInfo<int>& info) {
                           // Built via += (not operator+) to dodge a GCC 12
                           // -Wrestrict false positive (PR 105329).
                           std::string name = "n";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(Collectives, SingleMemberIsEmpty) {
  CollectiveDesc d;
  d.op = OpType::kAllreduce;
  d.n = 1;
  d.me = 0;
  d.bytes = 100;
  std::vector<SubOp> out;
  expand_collective(d, {}, out);
  EXPECT_TRUE(out.empty());
}

TEST(Collectives, AlltoallvRespectsSizesAndSkipsEmptyPairs) {
  const int n = 4;
  // send_matrix[i][j] = bytes i sends to j.
  std::uint64_t m[4][4] = {{0, 10, 0, 30}, {1, 0, 0, 0}, {0, 0, 0, 0}, {7, 0, 9, 0}};
  std::vector<std::vector<SubOp>> scheds(n);
  for (int me = 0; me < n; ++me) {
    std::vector<std::uint64_t> send(4), recv(4);
    for (int j = 0; j < 4; ++j) {
      send[static_cast<std::size_t>(j)] = m[me][j];
      recv[static_cast<std::size_t>(j)] = m[j][me];
    }
    CollectiveDesc d;
    d.op = OpType::kAlltoallv;
    d.n = n;
    d.me = me;
    d.send_sizes = send;
    d.recv_sizes = recv;
    expand_collective(d, {}, scheds[static_cast<std::size_t>(me)]);
  }
  std::uint64_t expected = 0;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      if (i != j) expected += m[i][j];
  EXPECT_EQ(execute(scheds), expected);
  // Rank 2 sends nothing and receives only from 3.
  int rank2_sends = 0;
  for (const auto& op : scheds[2])
    if (op.kind == SubOp::Kind::kIsend && op.bytes > 0) ++rank2_sends;
  EXPECT_EQ(rank2_sends, 0);
}

TEST(Collectives, DisseminationRounds) {
  EXPECT_EQ(dissemination_rounds(1), 0);
  EXPECT_EQ(dissemination_rounds(2), 1);
  EXPECT_EQ(dissemination_rounds(8), 3);
  EXPECT_EQ(dissemination_rounds(9), 4);
}

TEST(Collectives, BruckUsesLogRounds) {
  const int n = 64;
  CollectiveAlgos bruck;
  bruck.alltoall = CollectiveAlgos::Alltoall::kBruck;
  const auto b = expand_all(OpType::kAlltoall, n, 100, 0, bruck)[0];
  const auto p = expand_all(OpType::kAlltoall, n, 100, 0)[0];
  int b_sends = 0, p_sends = 0;
  for (const auto& op : b) b_sends += op.kind == SubOp::Kind::kIsend ? 1 : 0;
  for (const auto& op : p) p_sends += op.kind == SubOp::Kind::kIsend ? 1 : 0;
  EXPECT_EQ(b_sends, 6);   // log2(64)
  EXPECT_EQ(p_sends, 63);  // n-1 pairwise rounds
}

}  // namespace
}  // namespace hps::simmpi
