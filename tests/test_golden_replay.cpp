// Golden replay: the predicted total and communication times of two NPB
// traces (CG, MG) and one DOE proxy app (MiniFE) are locked to committed
// constants for all four schemes. Any hot-path change that shifts virtual
// time — event ordering, rate arithmetic, pool recycling — fails here
// immediately, with the offending scheme named. The CG and MiniFE constants
// were captured before the calendar-queue/pool/incremental-ripple overhaul
// and verified unchanged after it, including across the replacement of the
// flow model's ripple with the incremental max-min solver; MG was added with
// the solver already in place, locked to values the pre-solver code also
// produces.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "workloads/generators.hpp"

namespace hps::core {
namespace {

struct GoldenRow {
  Scheme scheme;
  SimTime total;
  SimTime comm;
};

void check_app(const char* app, const GoldenRow (&rows)[4]) {
  workloads::GenParams gp;
  gp.ranks = 64;
  gp.seed = 7;
  gp.iter_factor = 0.25;
  const trace::Trace t = workloads::generate_app(app, gp);
  const TraceOutcome out = run_all_schemes(t);
  for (const GoldenRow& row : rows) {
    const SchemeOutcome& so = out.of(row.scheme);
    EXPECT_TRUE(so.ok) << app << " " << scheme_name(row.scheme);
    EXPECT_EQ(so.total_time, row.total) << app << " " << scheme_name(row.scheme);
    EXPECT_EQ(so.comm_time, row.comm) << app << " " << scheme_name(row.scheme);
  }
}

TEST(GoldenReplay, CG) {
  check_app("CG", {
                      {Scheme::kMfact, 364219145, 58504163},
                      {Scheme::kPacket, 364106064, 58389268},
                      {Scheme::kFlow, 364037512, 58320498},
                      {Scheme::kPacketFlow, 364108527, 58391719},
                  });
}

TEST(GoldenReplay, MG) {
  check_app("MG", {
                      {Scheme::kMfact, 131212895, 22951920},
                      {Scheme::kPacket, 131334624, 23072191},
                      {Scheme::kFlow, 131330597, 23067188},
                      {Scheme::kPacketFlow, 131336380, 23073943},
                  });
}

TEST(GoldenReplay, MiniFE) {
  check_app("MiniFE", {
                          {Scheme::kMfact, 218341703, 32192347},
                          {Scheme::kPacket, 217658462, 31507702},
                          {Scheme::kFlow, 217704521, 31553384},
                          {Scheme::kPacketFlow, 217665553, 31514782},
                      });
}

}  // namespace
}  // namespace hps::core
