// Integration tests of the MPI replay engine on the simulated networks:
// timing plausibility, happened-before enforcement, eager vs rendezvous,
// nonblocking completion, collectives through the network, determinism, and
// deadlock detection.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include "machine/machine.hpp"
#include "robust/guard.hpp"
#include "simmpi/replayer.hpp"
#include "trace/builder.hpp"
#include "trace/validate.hpp"

namespace hps::simmpi {
namespace {

using trace::OpType;
using trace::RankBuilder;
using trace::Trace;
using trace::TraceMeta;

TraceMeta meta(Rank n) {
  TraceMeta m;
  m.app = "unit";
  m.nranks = n;
  m.ranks_per_node = 1;  // every rank on its own node: all traffic hits the network
  m.machine = "cielito";
  return m;
}

machine::MachineInstance instance(const Trace& t) {
  return machine::MachineInstance(machine::cielito(), t.nranks(), t.meta().ranks_per_node);
}

class ReplayerAllModels : public ::testing::TestWithParam<NetModelKind> {};

TEST_P(ReplayerAllModels, PingPongTiming) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 1024, 1, 0);
  b0.recv(1, 1024, 2, 0);
  b1.recv(0, 1024, 1, 0);
  b1.send(0, 1024, 2, 0);
  trace::validate_or_throw(t);

  const auto mi = instance(t);
  const ReplayResult r = replay_trace(t, mi, GetParam());
  // One round trip of 1 KiB: at least 2x (2 overheads + transfer).
  const SimTime min_one_way = 2 * mi.software_overhead() + 1024 / 2;
  EXPECT_GT(r.total_time, 2 * min_one_way / 2);
  EXPECT_LT(r.total_time, 10 * kMillisecond);
  EXPECT_EQ(r.rank_finish.size(), 2u);
}

TEST_P(ReplayerAllModels, ComputeOnlyMatchesTrace) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.compute(5 * kMillisecond);
  b1.compute(3 * kMillisecond);
  const ReplayResult r = replay_trace(t, instance(t), GetParam());
  EXPECT_EQ(r.total_time, 5 * kMillisecond);
  EXPECT_EQ(r.rank_comm[0], 0);
  EXPECT_EQ(r.rank_comm[1], 0);
}

TEST_P(ReplayerAllModels, ComputeScaleApplies) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.compute(10 * kMillisecond);
  b1.compute(1 * kMillisecond);
  ReplayConfig cfg;
  cfg.compute_scale = 0.5;
  const ReplayResult r = replay_trace(t, instance(t), GetParam(), cfg);
  EXPECT_EQ(r.total_time, 5 * kMillisecond);
}

TEST_P(ReplayerAllModels, HappenedBeforeHonored) {
  // Rank 1's recv must wait for rank 0's long compute before the send.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.compute(20 * kMillisecond).send(1, 64, 1, 0);
  b1.recv(0, 64, 1, 0);
  const ReplayResult r = replay_trace(t, instance(t), GetParam());
  EXPECT_GT(r.rank_finish[1], 20 * kMillisecond);
  // Receiver idled through the sender's compute: that is comm (wait) time.
  EXPECT_GT(r.rank_comm[1], 19 * kMillisecond);
}

TEST_P(ReplayerAllModels, UnexpectedMessageBuffered) {
  // Send arrives long before the recv is posted; recv should complete
  // instantly when posted.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 64, 1, 0);  // eager, fire-and-forget
  b1.compute(50 * kMillisecond);
  b1.recv(0, 64, 1, 0);
  const ReplayResult r = replay_trace(t, instance(t), GetParam());
  EXPECT_LT(r.rank_finish[1], 51 * kMillisecond);
}

TEST_P(ReplayerAllModels, RendezvousCouplesSenderToReceiver) {
  // A large (rendezvous) blocking send cannot complete until the receiver
  // posts its recv after a long compute.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 1 * MiB, 1, 0);
  b1.compute(30 * kMillisecond);
  b1.recv(0, 1 * MiB, 1, 0);
  const ReplayResult r = replay_trace(t, instance(t), GetParam());
  EXPECT_GT(r.rank_finish[0], 30 * kMillisecond) << "sender returned before receiver posted";
}

TEST_P(ReplayerAllModels, EagerSendDoesNotBlock) {
  // A small (eager) blocking send completes even though the receiver posts
  // its recv much later.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 512, 1, 0);
  b0.compute(1 * kMillisecond);
  b1.compute(80 * kMillisecond);
  b1.recv(0, 512, 1, 0);
  const ReplayResult r = replay_trace(t, instance(t), GetParam());
  EXPECT_LT(r.rank_finish[0], 10 * kMillisecond);
}

TEST_P(ReplayerAllModels, NonblockingOverlapsComputation) {
  // Isend/Irecv + compute + Wait: the transfer overlaps the compute, so the
  // total is about the compute time, not compute + transfer.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  const std::uint64_t big = 4 * MiB;  // ~3.3 ms at 10 Gbps
  const auto r1 = b1.irecv(0, big, 1, 0);
  b1.compute(20 * kMillisecond);
  b1.wait(r1, 0);
  const auto r0 = b0.isend(1, big, 1, 0);
  b0.compute(20 * kMillisecond);
  b0.wait(r0, 0);
  const ReplayResult r = replay_trace(t, instance(t), GetParam());
  EXPECT_LT(r.total_time, 26 * kMillisecond);
}

TEST_P(ReplayerAllModels, MessageOrderPreservedPerStream) {
  // Two same-tag messages must match in order even if sizes differ.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 100, 1, 0);
  b0.send(1, 2000, 1, 0);
  b1.recv(0, 100, 1, 0);
  b1.recv(0, 2000, 1, 0);
  trace::validate_or_throw(t);
  const ReplayResult r = replay_trace(t, instance(t), GetParam());
  EXPECT_GT(r.total_time, 0);
}

TEST_P(ReplayerAllModels, CollectivesRunThroughTheNetwork) {
  Trace t(meta(8));
  for (Rank r = 0; r < 8; ++r) {
    RankBuilder b(t, r);
    b.compute(kMillisecond);
    b.allreduce(4096, 0);
    b.barrier(0);
    b.bcast(2, 64 * 1024, 0);
    b.alltoall(2048, 0);
  }
  trace::validate_or_throw(t);
  const ReplayResult r = replay_trace(t, instance(t), GetParam());
  EXPECT_GT(r.total_time, kMillisecond);
  EXPECT_GT(r.net.messages, 8u) << "collectives must generate network traffic";
}

TEST_P(ReplayerAllModels, SubCommunicatorCollective) {
  Trace t(meta(6));
  const CommId odd = t.add_comm({1, 3, 5});
  for (Rank r = 0; r < 6; ++r) {
    RankBuilder b(t, r);
    b.compute(100);
    if (r % 2 == 1) b.allreduce(1024, 0, odd);
    b.barrier(0);
  }
  trace::validate_or_throw(t);
  const ReplayResult r = replay_trace(t, instance(t), GetParam());
  EXPECT_GT(r.total_time, 0);
}

TEST_P(ReplayerAllModels, AlltoallvAsymmetricSizes) {
  Trace t(meta(4));
  // m[i][j]: bytes i sends to j.
  const std::uint64_t m[4][4] = {
      {0, 10000, 0, 500}, {0, 0, 20000, 0}, {64, 64, 0, 64}, {0, 0, 0, 0}};
  for (Rank r = 0; r < 4; ++r) {
    RankBuilder b(t, r);
    b.compute(1000);
    b.alltoallv(m[static_cast<std::size_t>(r)], 0);
  }
  trace::validate_or_throw(t);
  const ReplayResult res = replay_trace(t, instance(t), GetParam());
  EXPECT_GT(res.total_time, 0);
}

TEST_P(ReplayerAllModels, DeterministicAcrossRuns) {
  Trace t(meta(4));
  for (Rank r = 0; r < 4; ++r) {
    RankBuilder b(t, r);
    b.compute(1000 + 17 * r);
    b.allreduce(512, 0);
    const Rank peer = r ^ 1;
    b.irecv(peer, 4096, 9, 0);
    b.isend(peer, 4096, 9, 0);
    b.waitall(0);
  }
  trace::validate_or_throw(t);
  const auto mi = instance(t);
  const ReplayResult a = replay_trace(t, mi, GetParam());
  const ReplayResult b = replay_trace(t, mi, GetParam());
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.rank_finish, b.rank_finish);
}

TEST_P(ReplayerAllModels, DeadlockDetected) {
  // Head-to-head blocking rendezvous sends with receives afterwards: a real
  // MPI deadlock, which the replayer must diagnose rather than hang.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 1 * MiB, 1, 0);
  b0.recv(1, 1 * MiB, 2, 0);
  b1.send(0, 1 * MiB, 2, 0);
  b1.recv(0, 1 * MiB, 1, 0);
  EXPECT_THROW(replay_trace(t, instance(t), GetParam()), Error);
}

TEST_P(ReplayerAllModels, UnmatchedRecvDeadlock) {
  // A receive with no matching send anywhere: the replayer must terminate
  // with a structured DeadlockError — and the run guard must classify it as
  // FailKind::kDeadlock — instead of hanging forever.
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.recv(1, 4096, 1, 0);
  b1.compute(1000);
  EXPECT_THROW(replay_trace(t, instance(t), GetParam()), DeadlockError);
  const auto failure =
      robust::run_guarded([&] { (void)replay_trace(t, instance(t), GetParam()); });
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->kind, robust::FailKind::kDeadlock);
  EXPECT_FALSE(failure->message.empty());
}

INSTANTIATE_TEST_SUITE_P(Models, ReplayerAllModels,
                         ::testing::Values(NetModelKind::kPacket, NetModelKind::kFlow,
                                           NetModelKind::kPacketFlow),
                         [](const ::testing::TestParamInfo<NetModelKind>& info) {
                           switch (info.param) {
                             case NetModelKind::kPacket: return "packet";
                             case NetModelKind::kFlow: return "flow";
                             default: return "packetflow";
                           }
                         });

TEST(Replayer, SameNodeRanksUseLocalPath) {
  TraceMeta m = meta(2);
  m.ranks_per_node = 2;  // both ranks on one node
  Trace t(m);
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 1 * MiB, 1, 0);
  b1.recv(0, 1 * MiB, 1, 0);
  const machine::MachineInstance mi(machine::cielito(), 2, 2);
  const ReplayResult r = replay_trace(t, mi, NetModelKind::kPacket);
  // 1 MiB at 10 Gbps would take ~840 us on the wire; local copy is ~20 us.
  EXPECT_LT(r.total_time, 200 * kMicrosecond);
}

TEST(Replayer, EagerThresholdConfigurable) {
  Trace t(meta(2));
  RankBuilder b0(t, 0), b1(t, 1);
  b0.send(1, 16 * 1024, 1, 0);
  b1.compute(10 * kMillisecond);
  b1.recv(0, 16 * 1024, 1, 0);
  ReplayConfig eager_cfg;
  eager_cfg.eager_threshold = 64 * 1024;  // now eager: sender free early
  const ReplayResult eager = replay_trace(t, instance(t), NetModelKind::kPacketFlow,
                                          eager_cfg);
  ReplayConfig rdv_cfg;
  rdv_cfg.eager_threshold = 1024;  // rendezvous: sender blocked on receiver
  const ReplayResult rdv = replay_trace(t, instance(t), NetModelKind::kPacketFlow, rdv_cfg);
  EXPECT_LT(eager.rank_finish[0], kMillisecond);
  EXPECT_GT(rdv.rank_finish[0], 10 * kMillisecond);
}

}  // namespace
}  // namespace hps::simmpi
