// Supervisor ↔ worker pipe protocol: framing round-trips, torn and short
// reads, CRC corruption, oversized-frame rejection, and the permanence of a
// corrupt stream — the properties the supervisor's crash classification
// depends on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "robust/ipc.hpp"
#include "robust/journal.hpp"

namespace hps::robust::ipc {
namespace {

/// A pipe whose both ends close with the fixture.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int rd() const { return fds[0]; }
  int wr() const { return fds[1]; }
  void close_wr() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(Ipc, FrameRoundTripThroughPipe) {
  Pipe p;
  const Message sent{MsgType::kTask, std::string("payload \x00\xff bytes", 16)};
  ASSERT_TRUE(write_frame(p.wr(), sent));
  ASSERT_TRUE(write_frame(p.wr(), {MsgType::kHeartbeat, ""}));

  Message got;
  ASSERT_EQ(read_message(p.rd(), got), ReadStatus::kMessage);
  EXPECT_EQ(got.type, MsgType::kTask);
  EXPECT_EQ(got.payload, sent.payload);
  // The second frame must still be intact: read_message never over-reads.
  ASSERT_EQ(read_message(p.rd(), got), ReadStatus::kMessage);
  EXPECT_EQ(got.type, MsgType::kHeartbeat);
  EXPECT_EQ(got.payload, "");

  p.close_wr();
  EXPECT_EQ(read_message(p.rd(), got), ReadStatus::kEof);
}

TEST(Ipc, DecoderYieldsMessagesAcrossArbitrarySplits) {
  std::string stream;
  const std::vector<Message> sent = {
      {MsgType::kResult, "alpha"}, {MsgType::kError, ""}, {MsgType::kTask, "omega"}};
  for (const Message& m : sent) stream += encode_frame(m);

  // Feed one byte at a time: every split point must be handled.
  FrameDecoder dec;
  std::vector<Message> got;
  for (const char c : stream) {
    dec.feed(&c, 1);
    Message m;
    while (dec.next(m) == FrameDecoder::Status::kMessage) got.push_back(m);
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].type, sent[i].type);
    EXPECT_EQ(got[i].payload, sent[i].payload);
  }
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_FALSE(dec.corrupt());
}

TEST(Ipc, TornFrameIsNeedMoreThenEofIsCorrupt) {
  const std::string frame = encode_frame({MsgType::kResult, "truncated-payload"});

  // Decoder view: a torn prefix is kNeedMore (more bytes may arrive)...
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size() - 5);
  Message m;
  EXPECT_EQ(dec.next(m), FrameDecoder::Status::kNeedMore);
  EXPECT_FALSE(dec.corrupt());
  // ...until the remainder arrives and the frame closes.
  dec.feed(frame.data() + frame.size() - 5, 5);
  EXPECT_EQ(dec.next(m), FrameDecoder::Status::kMessage);
  EXPECT_EQ(m.payload, "truncated-payload");

  // Blocking-read view: EOF mid-frame is a torn stream, not a clean end.
  Pipe p;
  ASSERT_EQ(::write(p.wr(), frame.data(), frame.size() - 5),
            static_cast<ssize_t>(frame.size() - 5));
  p.close_wr();
  EXPECT_EQ(read_message(p.rd(), m), ReadStatus::kCorrupt);
}

TEST(Ipc, CrcCorruptionPoisonsTheStreamPermanently) {
  std::string stream = encode_frame({MsgType::kResult, "first"});
  stream.back() ^= 0x01;  // flip one payload bit: CRC mismatch
  stream += encode_frame({MsgType::kResult, "second"});

  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  Message m;
  EXPECT_EQ(dec.next(m), FrameDecoder::Status::kCorrupt);
  EXPECT_TRUE(dec.corrupt());
  // Framing has no resync point: the intact-looking second frame must NOT be
  // decodable — the whole stream is untrustworthy.
  EXPECT_EQ(dec.next(m), FrameDecoder::Status::kCorrupt);
  dec.feed(stream.data(), stream.size());  // feeding more changes nothing
  EXPECT_EQ(dec.next(m), FrameDecoder::Status::kCorrupt);

  Pipe p;
  const std::string bad = encode_frame({MsgType::kResult, "x"});
  std::string flipped = bad;
  flipped.back() ^= 0x01;
  ASSERT_EQ(::write(p.wr(), flipped.data(), flipped.size()),
            static_cast<ssize_t>(flipped.size()));
  Message got;
  EXPECT_EQ(read_message(p.rd(), got), ReadStatus::kCorrupt);
}

TEST(Ipc, OversizedAndZeroLengthFramesAreRejected) {
  // A length field beyond kMaxFrameBytes is a corrupt header, not a request
  // to allocate 4 GB.
  std::string huge(8, '\0');
  huge[0] = '\xff';
  huge[1] = '\xff';
  huge[2] = '\xff';
  huge[3] = '\x7f';  // len = 0x7fffffff
  FrameDecoder dec;
  dec.feed(huge.data(), huge.size());
  Message m;
  EXPECT_EQ(dec.next(m), FrameDecoder::Status::kCorrupt);

  Pipe p;
  ASSERT_EQ(::write(p.wr(), huge.data(), huge.size()), 8);
  EXPECT_EQ(read_message(p.rd(), m), ReadStatus::kCorrupt);

  // Zero-length payload cannot even carry the type byte.
  FrameDecoder dec0;
  const std::string zero(8, '\0');
  dec0.feed(zero.data(), zero.size());
  EXPECT_EQ(dec0.next(m), FrameDecoder::Status::kCorrupt);
}

TEST(Ipc, EncodeFrameMatchesJournalFraming) {
  // The protocol documents itself as HPSJ framing with a leading type byte;
  // verify the layout explicitly so neither side can drift.
  const Message m{MsgType::kShutdown, "zz"};
  const std::string f = encode_frame(m);
  ASSERT_EQ(f.size(), 8u + 3u);
  const auto u32at = [&](std::size_t off) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(f[off])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(f[off + 1])) << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(f[off + 2])) << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(f[off + 3])) << 24);
  };
  EXPECT_EQ(u32at(0), 3u);  // payload = type byte + "zz"
  EXPECT_EQ(u32at(4), crc32(f.data() + 8, 3));
  EXPECT_EQ(static_cast<MsgType>(f[8]), MsgType::kShutdown);
  EXPECT_EQ(f.substr(9), "zz");
}

TEST(Ipc, ConfigurableFrameCapRejectsBeforeTheTransportWideLimit) {
  // A decoder built with a tighter cap (the serve request path) refuses a
  // frame the default transport limit would have accepted.
  const std::string frame = encode_frame({MsgType::kRequest, std::string(256, 'x')});
  FrameDecoder tight(128);
  tight.feed(frame.data(), frame.size());
  Message m;
  EXPECT_EQ(tight.next(m), FrameDecoder::Status::kCorrupt);
  EXPECT_STREQ(tight.corrupt_reason(), "oversized frame");

  FrameDecoder roomy;  // default kMaxFrameBytes
  roomy.feed(frame.data(), frame.size());
  EXPECT_EQ(roomy.next(m), FrameDecoder::Status::kMessage);
  EXPECT_EQ(m.payload.size(), 256u);

  // The blocking reader honors the same knob.
  Pipe p;
  ASSERT_TRUE(write_frame(p.wr(), {MsgType::kRequest, std::string(256, 'x')}));
  EXPECT_EQ(read_message(p.rd(), m, /*max_frame=*/128), ReadStatus::kCorrupt);
}

TEST(Ipc, CorruptReasonDistinguishesFailureModes) {
  Message m;

  std::string zero(8, '\0');
  FrameDecoder dz;
  dz.feed(zero.data(), zero.size());
  EXPECT_EQ(dz.next(m), FrameDecoder::Status::kCorrupt);
  EXPECT_STREQ(dz.corrupt_reason(), "zero-length frame");

  std::string flipped = encode_frame({MsgType::kResult, "x"});
  flipped.back() ^= 0x01;
  FrameDecoder dc;
  dc.feed(flipped.data(), flipped.size());
  EXPECT_EQ(dc.next(m), FrameDecoder::Status::kCorrupt);
  EXPECT_STREQ(dc.corrupt_reason(), "crc mismatch");

  FrameDecoder ok;
  EXPECT_STREQ(ok.corrupt_reason(), "");  // clean decoder: no reason
}

TEST(Ipc, MsgTypeNames) {
  EXPECT_STREQ(msg_type_name(MsgType::kTask), "task");
  EXPECT_STREQ(msg_type_name(MsgType::kResult), "result");
  EXPECT_STREQ(msg_type_name(MsgType::kHeartbeat), "heartbeat");
  EXPECT_STREQ(msg_type_name(MsgType::kError), "error");
  EXPECT_STREQ(msg_type_name(MsgType::kShutdown), "shutdown");
  // Serve-transport types share the enum but a disjoint range.
  EXPECT_STREQ(msg_type_name(MsgType::kRequest), "request");
  EXPECT_STREQ(msg_type_name(MsgType::kRecord), "record");
  EXPECT_STREQ(msg_type_name(MsgType::kSummary), "summary");
  EXPECT_STREQ(msg_type_name(MsgType::kReject), "reject");
  EXPECT_STREQ(msg_type_name(MsgType::kPong), "pong");
  EXPECT_STREQ(msg_type_name(MsgType::kStatsReply), "stats-reply");
  EXPECT_STREQ(read_status_name(ReadStatus::kMessage), "message");
  EXPECT_STREQ(read_status_name(ReadStatus::kEof), "eof");
  EXPECT_STREQ(read_status_name(ReadStatus::kCorrupt), "corrupt");
}

}  // namespace
}  // namespace hps::robust::ipc
