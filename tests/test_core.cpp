// Integration tests for the core module: the four-scheme runner, DIFF
// metrics, study caching, SST 3.0 compatibility emulation, and the
// need-for-simulation decision pipeline on a miniature corpus.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/decision.hpp"
#include "core/runner.hpp"
#include "core/study.hpp"
#include "trace/builder.hpp"
#include "workloads/generators.hpp"

namespace hps::core {
namespace {

workloads::GenParams small_params(const char* machine = "cielito") {
  workloads::GenParams p;
  p.ranks = 16;
  p.seed = 31;
  p.iter_factor = 0.2;
  p.machine = machine;
  return p;
}

TEST(Runner, AllSchemesSucceedOnSmallTrace) {
  const auto t = workloads::generate_app("MiniFE", small_params());
  const TraceOutcome o = run_all_schemes(t);
  for (int s = 0; s < static_cast<int>(Scheme::kNumSchemes); ++s) {
    EXPECT_TRUE(o.scheme[s].attempted);
    EXPECT_TRUE(o.scheme[s].ok) << scheme_name(static_cast<Scheme>(s)) << ": "
                                << o.scheme[s].error;
    EXPECT_GT(o.scheme[s].total_time, 0);
    EXPECT_GT(o.scheme[s].wall_seconds, 0.0);
  }
  EXPECT_GT(o.measured_total, 0);
  EXPECT_GT(o.events, 0u);
  EXPECT_EQ(o.app, "MiniFE");
}

TEST(Runner, DiffTotalComputed) {
  const auto t = workloads::generate_app("CG", small_params());
  const TraceOutcome o = run_all_schemes(t);
  const auto d = o.diff_total(Scheme::kPacketFlow);
  ASSERT_TRUE(d.has_value());
  EXPECT_GE(*d, 0.0);
  EXPECT_LT(*d, 1.0) << "model and simulation should roughly agree on a small trace";
}

TEST(Runner, ClassificationPopulatedAndClFeatureSet) {
  const auto t = workloads::generate_app("EP", small_params());
  const TraceOutcome o = run_all_schemes(t);
  EXPECT_EQ(o.app_class, mfact::AppClass::kComputationBound);
  EXPECT_EQ(o.features[trace::kF_CL], 0.0);
  EXPECT_DOUBLE_EQ(o.features[trace::kF_R], 16.0);
}

TEST(Runner, MfactIsFastest) {
  const auto t = workloads::generate_app("MG", small_params());
  const TraceOutcome o = run_all_schemes(t);
  EXPECT_LT(o.of(Scheme::kMfact).wall_seconds, o.of(Scheme::kPacket).wall_seconds);
}

TEST(Runner, Sst30CompatSkipsUnsupported) {
  RunOptions opts;
  opts.sst30_compat = true;
  // CG uses row sub-communicators: packet and flow must be skipped.
  const auto cg = workloads::generate_app("CG", small_params());
  const TraceOutcome o = run_all_schemes(cg, opts);
  EXPECT_FALSE(o.of(Scheme::kPacket).attempted);
  EXPECT_FALSE(o.of(Scheme::kFlow).attempted);
  EXPECT_TRUE(o.of(Scheme::kPacketFlow).ok);
  // IS uses Alltoallv (complex grouping): only flow is skipped.
  const auto is = workloads::generate_app("IS", small_params());
  const TraceOutcome o2 = run_all_schemes(is, opts);
  EXPECT_TRUE(o2.of(Scheme::kPacket).ok);
  EXPECT_FALSE(o2.of(Scheme::kFlow).attempted);
}

TEST(Study, RunsMiniCorpusAndCaches) {
  StudyOptions opts;
  opts.corpus.limit = 3;
  opts.corpus.duration_scale = 0.1;
  opts.cache_path = std::string("/tmp/hps_test_cache_") + std::to_string(getpid()) + ".bin";
  std::remove(opts.cache_path.c_str());

  const StudyResult first = run_study(opts);
  EXPECT_FALSE(first.from_cache);
  ASSERT_EQ(first.outcomes.size(), 3u);
  for (const auto& o : first.outcomes) EXPECT_TRUE(o.of(Scheme::kMfact).ok);

  const StudyResult second = run_study(opts);
  EXPECT_TRUE(second.from_cache);
  ASSERT_EQ(second.outcomes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(second.outcomes[i].app, first.outcomes[i].app);
    EXPECT_EQ(second.outcomes[i].of(Scheme::kPacket).total_time,
              first.outcomes[i].of(Scheme::kPacket).total_time);
  }

  // A different option set must not reuse the cache.
  StudyOptions changed = opts;
  changed.corpus.duration_scale = 0.12;
  EXPECT_NE(study_cache_key(opts), study_cache_key(changed));
  std::remove(opts.cache_path.c_str());
}

TEST(Study, StaleSchemaKeyForcesRecompute) {
  // A cache written under a different key — e.g. by a build with another
  // obs::kObsSchemaVersion, which study_cache_key mixes in — must be ignored
  // and the study recomputed rather than misread.
  StudyOptions opts;
  opts.corpus.limit = 2;
  opts.corpus.duration_scale = 0.1;
  opts.cache_path =
      std::string("/tmp/hps_test_cache_stale_") + std::to_string(getpid()) + ".bin";
  std::remove(opts.cache_path.c_str());

  const StudyResult fresh = run_study(opts);
  EXPECT_FALSE(fresh.from_cache);

  // Rewrite the cache as an incompatible build would have keyed it.
  save_outcomes(fresh.outcomes, opts.cache_path, study_cache_key(opts) ^ 0x5eed);
  const StudyResult after_stale = run_study(opts);
  EXPECT_FALSE(after_stale.from_cache) << "stale key must force recompute";

  // The recompute rewrote the cache under the current key: now it hits.
  const StudyResult after_fix = run_study(opts);
  EXPECT_TRUE(after_fix.from_cache);
  std::remove(opts.cache_path.c_str());
}

TEST(Study, CacheRejectsWrongKey) {
  const std::string path =
      std::string("/tmp/hps_test_cache_key_") + std::to_string(getpid()) + ".bin";
  std::vector<TraceOutcome> outcomes(1);
  outcomes[0].app = "X";
  save_outcomes(outcomes, path, 1234);
  EXPECT_TRUE(load_outcomes(path, 1234).has_value());
  EXPECT_FALSE(load_outcomes(path, 9999).has_value());
  EXPECT_FALSE(load_outcomes("/nonexistent/file", 1234).has_value());
  std::remove(path.c_str());
}

TEST(Study, CacheRejectsTruncation) {
  // Every proper prefix of a valid cache must load as a miss — never a
  // crash, never a partial result.
  const std::string path =
      std::string("/tmp/hps_test_cache_trunc_") + std::to_string(getpid()) + ".bin";
  std::vector<TraceOutcome> outcomes(2);
  outcomes[0].app = "CG";
  outcomes[0].machine = "cielito";
  outcomes[1].app = "MiniFE";
  outcomes[1].scheme[1].error = "synthetic failure for string coverage";
  save_outcomes(outcomes, path, 77);
  std::string full;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    full = os.str();
  }
  ASSERT_TRUE(load_outcomes(path, 77).has_value());
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{4},
                                std::size_t{11}, std::size_t{15}, full.size() / 2,
                                full.size() - 1}) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(full.data(), static_cast<std::streamsize>(cut));
    os.close();
    EXPECT_FALSE(load_outcomes(path, 77).has_value()) << "truncated at " << cut;
  }
  std::remove(path.c_str());
}

TEST(Study, CacheSurvivesBitFlips) {
  // A bit-flipped cache may parse to garbage values or miss, but must never
  // escape load_outcomes as an exception — a corrupt length prefix used to
  // surface std::length_error/bad_alloc past the old hps::Error-only catch.
  const std::string path =
      std::string("/tmp/hps_test_cache_flip_") + std::to_string(getpid()) + ".bin";
  std::vector<TraceOutcome> outcomes(2);
  outcomes[0].app = "CG";
  outcomes[0].machine = "cielito";
  outcomes[1].app = "MiniFE";
  outcomes[1].scheme[0].error = "synthetic failure for string coverage";
  save_outcomes(outcomes, path, 99);
  std::string full;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    full = os.str();
  }
  for (std::size_t i = 0; i < full.size(); i += 3) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0xff);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    os.close();
    EXPECT_NO_THROW(load_outcomes(path, 99)) << "flip at byte " << i;
  }
  std::remove(path.c_str());
}

/// Build a tiny synthetic outcome set with known labels for decision tests.
std::vector<TraceOutcome> synthetic_outcomes(int n, std::uint64_t seed) {
  std::vector<TraceOutcome> out;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    TraceOutcome o;
    o.spec_id = i;
    o.app = "synthetic";
    const bool sensitive = rng.uniform() < 0.45;
    o.group = sensitive ? mfact::SensitivityGroup::kCommSensitive
                        : mfact::SensitivityGroup::kNotCommSensitive;
    o.features[trace::kF_CL] = sensitive ? 1.0 : 0.0;
    o.features[trace::kF_R] = 64.0 + rng.uniform(0, 512);
    o.features[trace::kF_PoSYN] = rng.uniform(0, 50);
    o.features[trace::kF_PoC] = sensitive ? rng.uniform(20, 80) : rng.uniform(0, 20);
    auto& m = o.of(Scheme::kMfact);
    m.attempted = m.ok = true;
    m.total_time = kSecond;
    m.comm_time = kSecond / 10;
    auto& pf = o.of(Scheme::kPacketFlow);
    pf.attempted = pf.ok = true;
    // Sensitive traces diverge (DIFF ~ 3-10%), insensitive ~0.5%, plus a
    // little label noise so the predictor isn't trivially perfect.
    double diff = sensitive ? rng.uniform(0.025, 0.10) : rng.uniform(0.0, 0.015);
    if (rng.uniform() < 0.05) diff = 0.03;  // noise
    pf.total_time = static_cast<SimTime>((1.0 + diff) * kSecond);
    pf.comm_time = kSecond / 9;
    out.push_back(o);
  }
  return out;
}

TEST(Decision, DatasetBuiltFromEligibleRows) {
  auto outcomes = synthetic_outcomes(50, 7);
  outcomes[0].of(Scheme::kPacketFlow).ok = false;  // ineligible
  const auto ds = build_decision_dataset(outcomes);
  EXPECT_EQ(ds.n(), 49u);
  EXPECT_EQ(ds.p(), static_cast<std::size_t>(trace::kNumFeatures));
  EXPECT_EQ(ds.names[trace::kF_CL], "CL");
}

TEST(Decision, NaiveRuleMatchesGroupAgreement) {
  const auto outcomes = synthetic_outcomes(200, 8);
  const NaiveRuleResult naive = evaluate_naive_rule(outcomes);
  EXPECT_EQ(naive.tp + naive.tn + naive.fp + naive.fn, 200);
  // CL correlates strongly with the label by construction.
  EXPECT_GT(naive.success_rate, 0.75);
}

TEST(Decision, ModelBeatsOrMatchesNaiveRule) {
  const auto outcomes = synthetic_outcomes(220, 9);
  DecisionOptions opts;
  opts.cv.splits = 20;  // keep the test quick
  const DecisionEvaluation ev = evaluate_decision_model(outcomes, opts);
  EXPECT_EQ(ev.total, 220);
  EXPECT_GT(ev.cv.success_rate(), ev.naive.success_rate - 0.05);
  EXPECT_GT(ev.cv.success_rate(), 0.8);
  EXPECT_FALSE(ev.cv.variables.empty());
  EXPECT_LE(ev.final_model.features.size(), 5u);
}

TEST(Decision, FinalModelPredicts) {
  const auto outcomes = synthetic_outcomes(220, 10);
  DecisionOptions opts;
  opts.cv.splits = 15;
  const DecisionEvaluation ev = evaluate_decision_model(outcomes, opts);
  int correct = 0, n = 0;
  for (const auto& o : outcomes) {
    const auto d = o.diff_total(Scheme::kPacketFlow);
    if (!d) continue;
    const bool truth = *d > opts.diff_threshold;
    if (needs_simulation(ev.final_model, o) == truth) ++correct;
    ++n;
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.85);
}

TEST(Decision, ThresholdChangesLabels) {
  const auto outcomes = synthetic_outcomes(100, 11);
  DecisionOptions strict;
  strict.diff_threshold = 0.001;
  DecisionOptions lax;
  lax.diff_threshold = 0.5;
  int strict_pos = 0, lax_pos = 0;
  const auto ds_strict = build_decision_dataset(outcomes, strict);
  const auto ds_lax = build_decision_dataset(outcomes, lax);
  for (int y : ds_strict.y) strict_pos += y;
  for (int y : ds_lax.y) lax_pos += y;
  EXPECT_GT(strict_pos, lax_pos);
  EXPECT_EQ(lax_pos, 0);
}

TEST(Study, ThreadedRunMatchesSerial) {
  // The worker pool must produce outcomes identical to a serial run (same
  // specs, same seeds, order preserved by spec id slots).
  StudyOptions serial;
  serial.corpus.limit = 6;
  serial.corpus.duration_scale = 0.1;
  serial.threads = 1;
  StudyOptions pooled = serial;
  pooled.threads = 3;
  const auto a = run_study(serial);
  const auto b = run_study(pooled);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].app, b.outcomes[i].app);
    EXPECT_EQ(a.outcomes[i].of(Scheme::kMfact).total_time,
              b.outcomes[i].of(Scheme::kMfact).total_time);
    EXPECT_EQ(a.outcomes[i].of(Scheme::kPacketFlow).total_time,
              b.outcomes[i].of(Scheme::kPacketFlow).total_time);
  }
}

TEST(Runner, TimingRepeatsAveraged) {
  const auto t = workloads::generate_app("CMC", small_params());
  RunOptions opts;
  opts.timing_repeats = 2;
  const TraceOutcome o = run_all_schemes(t, opts);
  // Results must be identical regardless of repeats (timing only changes).
  const TraceOutcome single = run_all_schemes(t);
  EXPECT_EQ(o.of(Scheme::kPacketFlow).total_time, single.of(Scheme::kPacketFlow).total_time);
}

}  // namespace
}  // namespace hps::core
