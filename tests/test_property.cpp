// Property tests over randomly generated (but structurally valid) traces:
// serialization round-trips exactly, validation accepts, MFACT and all three
// simulators replay to completion with positive deterministic results, and
// the cross-tool agreement holds under low contention. A seed sweep (TEST_P)
// explores many random structures.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "machine/machine.hpp"
#include "mfact/model.hpp"
#include "simmpi/replayer.hpp"
#include "trace/builder.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"

namespace hps {
namespace {

using trace::OpType;
using trace::RankBuilder;
using trace::Trace;

/// Build a random valid trace: interleaved compute, matched p2p rounds
/// (blocking and nonblocking), and world/sub-communicator collectives.
Trace random_trace(std::uint64_t seed) {
  Rng rng(seed);
  const Rank n = static_cast<Rank>(4 + 2 * rng.uniform_u64(7));  // 4..16, even
  trace::TraceMeta m;
  m.app = "random";
  m.nranks = n;
  m.ranks_per_node = static_cast<int>(1 + rng.uniform_u64(4));
  m.machine = "cielito";
  m.seed = seed;
  Trace t(std::move(m));

  // A sub-communicator of the even ranks.
  std::vector<Rank> evens;
  for (Rank r = 0; r < n; r += 2) evens.push_back(r);
  const CommId even_comm = t.add_comm(evens);

  std::vector<RankBuilder> bs;
  bs.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) bs.emplace_back(t, r);

  const int rounds = static_cast<int>(3 + rng.uniform_u64(6));
  for (int round = 0; round < rounds; ++round) {
    // Per-round compute.
    for (Rank r = 0; r < n; ++r)
      bs[static_cast<std::size_t>(r)].compute(
          static_cast<SimTime>(1000 + rng.uniform_u64(100000)));

    switch (rng.uniform_u64(5)) {
      case 0: {  // pairwise blocking exchange r <-> r^1 (ordered to avoid deadlock)
        const auto bytes = 64 + rng.uniform_u64(32 * 1024);
        const Tag tag = static_cast<Tag>(round * 10 + 1);
        for (Rank r = 0; r < n; ++r) {
          const Rank peer = r ^ 1;
          if (r < peer) {
            bs[static_cast<std::size_t>(r)].send(peer, bytes, tag, 100);
            bs[static_cast<std::size_t>(r)].recv(peer, bytes, tag, 100);
          } else {
            bs[static_cast<std::size_t>(r)].recv(peer, bytes, tag, 100);
            bs[static_cast<std::size_t>(r)].send(peer, bytes, tag, 100);
          }
        }
        break;
      }
      case 1: {  // nonblocking shifted ring exchange
        const auto bytes = 64 + rng.uniform_u64(64 * 1024);
        const int shift = static_cast<int>(1 + rng.uniform_u64(
                                                   static_cast<std::uint64_t>(n - 1)));
        const Tag tag = static_cast<Tag>(round * 10 + 2);
        for (Rank r = 0; r < n; ++r) {
          auto& b = bs[static_cast<std::size_t>(r)];
          b.irecv(static_cast<Rank>((r - shift + n) % n), bytes, tag, 10);
          b.isend(static_cast<Rank>((r + shift) % n), bytes, tag, 10);
          b.waitall(200);
        }
        break;
      }
      case 2: {  // world collective
        const auto bytes = 8 + rng.uniform_u64(8 * 1024);
        const int kind = static_cast<int>(rng.uniform_u64(4));
        const Rank root = static_cast<Rank>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
        for (Rank r = 0; r < n; ++r) {
          auto& b = bs[static_cast<std::size_t>(r)];
          switch (kind) {
            case 0: b.allreduce(bytes, 300); break;
            case 1: b.barrier(300); break;
            case 2: b.bcast(root, bytes, 300); break;
            default: b.reduce(root, bytes, 300); break;
          }
        }
        break;
      }
      case 3: {  // sub-communicator collective on the evens
        const auto bytes = 8 + rng.uniform_u64(4 * 1024);
        for (Rank r = 0; r < n; r += 2)
          bs[static_cast<std::size_t>(r)].allreduce(bytes, 300, even_comm);
        break;
      }
      default: {  // alltoallv with a random (possibly sparse) matrix
        std::vector<std::vector<std::uint64_t>> mtx(static_cast<std::size_t>(n));
        Rng mrng(mix_seed(seed, static_cast<std::uint64_t>(round)));
        for (Rank r = 0; r < n; ++r) {
          mtx[static_cast<std::size_t>(r)].resize(static_cast<std::size_t>(n));
          for (Rank d = 0; d < n; ++d)
            mtx[static_cast<std::size_t>(r)][static_cast<std::size_t>(d)] =
                (d == r || mrng.uniform() < 0.3) ? 0 : 32 + mrng.uniform_u64(4096);
        }
        for (Rank r = 0; r < n; ++r)
          bs[static_cast<std::size_t>(r)].alltoallv(mtx[static_cast<std::size_t>(r)], 500);
        break;
      }
    }
  }
  return t;
}

bool events_equal(const Trace& a, const Trace& b) {
  if (a.nranks() != b.nranks()) return false;
  for (Rank r = 0; r < a.nranks(); ++r) {
    const auto& ea = a.rank(r).events;
    const auto& eb = b.rank(r).events;
    if (ea.size() != eb.size()) return false;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      if (std::memcmp(&ea[i], &eb[i], sizeof(trace::Event)) != 0) return false;
    }
    if (a.rank(r).vlists != b.rank(r).vlists) return false;
  }
  return true;
}

class RandomTraces : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTraces, IsValid) {
  const Trace t = random_trace(GetParam());
  EXPECT_TRUE(trace::validate(t).empty());
}

TEST_P(RandomTraces, IoRoundTripsExactly) {
  const Trace t = random_trace(GetParam());
  std::stringstream ss;
  trace::write_binary(t, ss);
  const Trace u = trace::read_binary(ss);
  EXPECT_TRUE(events_equal(t, u));
  EXPECT_EQ(u.meta().app, t.meta().app);
  EXPECT_EQ(u.num_comms(), t.num_comms());
}

TEST_P(RandomTraces, AllToolsCompleteAndAreDeterministic) {
  const Trace t = random_trace(GetParam());
  const machine::MachineInstance mi(machine::cielito(), t.nranks(),
                                    t.meta().ranks_per_node);
  const auto sweep = mfact::make_sensitivity_sweep(gbps_to_Bps(10), 2500);
  const auto m1 = mfact::run_mfact(t, sweep);
  const auto m2 = mfact::run_mfact(t, sweep);
  EXPECT_GT(m1[0].total_time, 0);
  EXPECT_EQ(m1[0].total_time, m2[0].total_time);

  for (const auto kind : {simmpi::NetModelKind::kPacket, simmpi::NetModelKind::kFlow,
                          simmpi::NetModelKind::kPacketFlow}) {
    const auto r1 = simmpi::replay_trace(t, mi, kind);
    const auto r2 = simmpi::replay_trace(t, mi, kind);
    EXPECT_GT(r1.total_time, 0) << simmpi::net_model_name(kind);
    EXPECT_EQ(r1.total_time, r2.total_time) << simmpi::net_model_name(kind);
    // Totals must cover the per-rank compute: no lost time.
    for (Rank r = 0; r < t.nranks(); ++r) EXPECT_GE(r1.rank_finish[r], 0);
  }
}

TEST_P(RandomTraces, ModelAndSimulationAgreeLoosely) {
  // Random traces here are low-contention; the tools should land within 40%
  // of each other (a loose envelope — tight agreement is covered by the
  // targeted cross-tool tests).
  const Trace t = random_trace(GetParam());
  const auto o = core::run_all_schemes(t);
  for (const auto s : {core::Scheme::kPacket, core::Scheme::kFlow,
                       core::Scheme::kPacketFlow}) {
    const auto d = o.diff_total(s);
    ASSERT_TRUE(d.has_value());
    EXPECT_LT(*d, 0.40) << core::scheme_name(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraces,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hps
