// Unit tests for the telemetry subsystem: registry semantics under
// concurrency, histogram bucketing, the disabled fast path, exporters, and a
// run_study smoke test tying cache counters to observable behavior.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/study.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace hps::telemetry {
namespace {

TEST(Registry, DisabledByDefaultAndCountsNothing) {
  Registry reg;
  EXPECT_FALSE(reg.enabled());
  Counter c = reg.counter("x");
  c.add(42);
  EXPECT_EQ(reg.snapshot().value("x"), 0u);
}

TEST(Registry, DefaultConstructedHandlesAreInertAndSafe) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add();  // must not dereference a null registry
  g.record(7);
  h.observe(1.0);
  EXPECT_FALSE(h.live());
}

TEST(Registry, CounterRoundTrip) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("a.b");
  c.add();
  c.add(9);
  EXPECT_EQ(reg.snapshot().value("a.b"), 10u);
  // Re-registering the same name returns a handle to the same metric.
  reg.counter("a.b").add(5);
  EXPECT_EQ(reg.snapshot().value("a.b"), 15u);
}

TEST(Registry, ConcurrentCounterSumsAreExact) {
  Registry reg;
  reg.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 20000;
  Counter c = reg.counter("hits");
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kIters; ++i) c.add();
    });
  for (auto& t : pool) t.join();
  // Per-thread shards mean no increments are lost to racing read-modify-writes.
  EXPECT_EQ(reg.snapshot().value("hits"), kThreads * kIters);
}

TEST(Registry, GaugeMergesByMax) {
  Registry reg;
  reg.set_enabled(true);
  Gauge g = reg.gauge("depth");
  std::thread t1([&] { g.record(5); });
  std::thread t2([&] { g.record(17); });
  t1.join();
  t2.join();
  g.record(3);  // lower than the watermark; must not regress it
  EXPECT_EQ(reg.snapshot().value("depth"), 17u);
}

TEST(Registry, HistogramBucketBoundsAreUpperInclusive) {
  Registry reg;
  reg.set_enabled(true);
  Histogram h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1      -> bucket 0
  h.observe(1.0);    // == bound  -> bucket 0 (upper-inclusive)
  h.observe(1.001);  // > 1       -> bucket 1
  h.observe(10.0);   // == bound  -> bucket 1
  h.observe(99.0);   //           -> bucket 2
  h.observe(5000.0); // > last    -> overflow bucket
  const Snapshot snap = reg.snapshot();
  const MetricValue* m = snap.find("lat");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->hist.buckets.size(), 4u);
  EXPECT_EQ(m->hist.buckets[0], 2u);
  EXPECT_EQ(m->hist.buckets[1], 2u);
  EXPECT_EQ(m->hist.buckets[2], 1u);
  EXPECT_EQ(m->hist.buckets[3], 1u);
  EXPECT_EQ(m->hist.count, 6u);
  EXPECT_DOUBLE_EQ(m->hist.sum, 0.5 + 1.0 + 1.001 + 10.0 + 99.0 + 5000.0);
}

TEST(Registry, ResetValuesKeepsHandlesValid) {
  Registry reg;
  reg.set_enabled(true);
  Counter c = reg.counter("n");
  c.add(3);
  reg.reset_values();
  EXPECT_EQ(reg.snapshot().value("n"), 0u);
  c.add(2);
  EXPECT_EQ(reg.snapshot().value("n"), 2u);
}

TEST(LocalCounter, FlushesDeltasOnly) {
  Registry reg;
  reg.set_enabled(true);
  Counter shared = reg.counter("total");
  LocalCounter local;
  local.add(10);
  local.flush_to(shared);
  local.flush_to(shared);  // no new increments: must not double-count
  local.add(5);
  local.flush_to(shared);
  EXPECT_EQ(reg.snapshot().value("total"), 15u);
  EXPECT_EQ(local.value(), 15u);
}

TEST(Span, RecordedOnlyWhenTracing) {
  Registry reg;
  { Span s(reg, "ignored", "test"); }
  EXPECT_TRUE(reg.spans().empty());
  reg.set_tracing(true);
  {
    Span s(reg, "work", "test");
    s.arg("k", "v");
  }
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].cat, "test");
  EXPECT_GE(spans[0].dur_ns, 0);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "k");
}

TEST(ScopedTimer, ObservesElapsedSeconds) {
  Registry reg;
  reg.set_enabled(true);
  Histogram h = reg.histogram("t", duration_bounds());
  { ScopedTimer timer(h); }
  const Snapshot snap = reg.snapshot();
  const MetricValue* m = snap.find("t");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->hist.count, 1u);
  EXPECT_GE(m->hist.sum, 0.0);
}

// --- Histogram quantiles ---------------------------------------------------

TEST(HistogramQuantile, EmptySingleAndOverflowEdgeCases) {
  HistogramData h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> 0

  Registry reg;
  reg.set_enabled(true);
  Histogram one = reg.histogram("one", {1.0, 10.0});
  one.observe(4.0);
  const Snapshot snap1 = reg.snapshot();
  const MetricValue* m = snap1.find("one");
  ASSERT_NE(m, nullptr);
  // One sample in (1,10]: every quantile interpolates inside that bucket.
  for (const double q : {0.0, 0.5, 0.999, 1.0}) {
    const double v = m->hist.quantile(q);
    EXPECT_GE(v, 1.0) << q;
    EXPECT_LE(v, 10.0) << q;
  }

  Histogram over = reg.histogram("over", {1.0, 10.0});
  over.observe(5000.0);  // lands in the overflow bucket
  const Snapshot snap2 = reg.snapshot();
  const MetricValue* mo = snap2.find("over");
  ASSERT_NE(mo, nullptr);
  // The overflow bucket has no upper bound; quantile reports its lower bound
  // rather than inventing one.
  EXPECT_DOUBLE_EQ(mo->hist.quantile(0.99), 10.0);
}

TEST(HistogramQuantile, CrossShardMergeMatchesSingleThreadedFill) {
  // The same observations spread across 4 threads (4 shards) must merge to
  // the same histogram — and hence the same quantiles — as one thread doing
  // all the work.
  const std::vector<double> bounds = latency_bounds();
  std::vector<double> values;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 4000; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    // Log-uniform-ish across the microsecond..second range the bounds cover.
    const double exp = static_cast<double>((rng >> 33) % 6000) / 1000.0;  // [0,6)
    values.push_back(1e-6 * std::pow(10.0, exp));
  }

  Registry solo;
  solo.set_enabled(true);
  Histogram hs = solo.histogram("lat", bounds);
  for (const double v : values) hs.observe(v);

  Registry sharded;
  sharded.set_enabled(true);
  Histogram hp = sharded.histogram("lat", bounds);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t)
    pool.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < values.size(); i += 4)
        hp.observe(values[i]);
    });
  for (auto& t : pool) t.join();

  const Snapshot snap_solo = solo.snapshot();
  const Snapshot snap_sharded = sharded.snapshot();
  const MetricValue* a = snap_solo.find("lat");
  const MetricValue* b = snap_sharded.find("lat");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->hist.count, values.size());
  EXPECT_EQ(b->hist.count, values.size());
  EXPECT_EQ(a->hist.buckets, b->hist.buckets);
  EXPECT_NEAR(a->hist.sum, b->hist.sum, 1e-9 * a->hist.sum);
  for (const double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_DOUBLE_EQ(a->hist.quantile(q), b->hist.quantile(q)) << q;
}

TEST(HistogramQuantile, RandomizedDifferentialAgainstSortedVectorOracle) {
  // Histogram quantiles are bucket-interpolated; their error is bounded by
  // the width of the bucket holding the true quantile. Check p50/p99/p99.9
  // against a sorted-vector oracle over deterministic pseudo-random data.
  const std::vector<double> bounds = latency_bounds();
  std::uint64_t rng = 42;
  for (int round = 0; round < 8; ++round) {
    std::vector<double> values;
    const int n = 500 + round * 700;
    for (int i = 0; i < n; ++i) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      const double exp = static_cast<double>((rng >> 33) % 7000) / 1000.0;  // [0,7)
      values.push_back(2e-6 * std::pow(10.0, exp));
    }

    Registry reg;
    reg.set_enabled(true);
    Histogram h = reg.histogram("lat", bounds);
    for (const double v : values) h.observe(v);
    const Snapshot snap = reg.snapshot();
    const MetricValue* m = snap.find("lat");
    ASSERT_NE(m, nullptr);

    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (const double q : {0.5, 0.99, 0.999}) {
      const double oracle =
          sorted[std::min(sorted.size() - 1,
                          static_cast<std::size_t>(q * static_cast<double>(sorted.size())))];
      // The bucket containing the oracle value bounds the estimate.
      std::size_t bi = 0;
      while (bi < bounds.size() && oracle > bounds[bi]) ++bi;
      const double lo = bi == 0 ? 0.0 : bounds[bi - 1];
      const double hi = bi < bounds.size() ? bounds[bi] : bounds.back();
      const double est = m->hist.quantile(q);
      EXPECT_GE(est, lo) << "round " << round << " q " << q;
      EXPECT_LE(est, hi) << "round " << round << " q " << q;
    }
  }
}

// --- Span ring buffer and trace ids ----------------------------------------

TEST(SpanRing, BoundedStorageDropsOldestAndCountsDrops) {
  Registry reg;
  reg.set_tracing(true);
  reg.set_span_capacity(8);
  EXPECT_EQ(reg.span_capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    SpanRecord s;
    s.name = "s";
    s.name += std::to_string(i);
    s.cat = "test";
    reg.record_span(std::move(s));
  }
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 8u);        // bounded, not 20
  EXPECT_EQ(reg.spans_dropped(), 12u);
  // The ring keeps the *newest* spans in insertion order.
  for (int i = 0; i < 8; ++i) {
    const std::string want = "s" + std::to_string(12 + i);
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].name, want);
  }
  reg.reset_values();
  EXPECT_EQ(reg.spans_dropped(), 0u);
  EXPECT_TRUE(reg.spans().empty());
}

TEST(SpanRing, RecordSpanIsNoOpUnlessTracing) {
  Registry reg;
  SpanRecord s;
  s.name = "dropped";
  reg.record_span(std::move(s));
  EXPECT_TRUE(reg.spans().empty());
  EXPECT_EQ(reg.spans_dropped(), 0u);
}

TEST(TraceId, ScopeSetsNestsAndRestores) {
  EXPECT_EQ(current_trace_id(), 0u);
  {
    TraceIdScope outer(7);
    EXPECT_EQ(current_trace_id(), 7u);
    {
      TraceIdScope inner(9);
      EXPECT_EQ(current_trace_id(), 9u);
    }
    EXPECT_EQ(current_trace_id(), 7u);

    // Spans born inside the scope inherit the id.
    Registry reg;
    reg.set_tracing(true);
    { Span s(reg, "tagged", "test"); }
    const auto spans = reg.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].trace_id, 7u);
  }
  EXPECT_EQ(current_trace_id(), 0u);
}

// --- Exporters -------------------------------------------------------------

// Minimal JSON structural validator: enough to prove the exporters emit
// syntactically well-formed documents without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Export, ParseSpec) {
  EXPECT_EQ(parse_export_spec("summary")->mode, ExportConfig::Mode::kSummary);
  EXPECT_EQ(parse_export_spec("json")->mode, ExportConfig::Mode::kJson);
  const auto j = parse_export_spec("json:/tmp/m.json");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->path, "/tmp/m.json");
  const auto c = parse_export_spec("chrome:/tmp/t.json");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->mode, ExportConfig::Mode::kChrome);
  EXPECT_FALSE(parse_export_spec("chrome").has_value());  // chrome needs a path
  EXPECT_FALSE(parse_export_spec("bogus").has_value());
}

TEST(Export, SummaryTableListsMetrics) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("sim.events").add(123);
  reg.gauge("sim.depth").record(9);
  const std::string table = render_summary(reg.snapshot());
  EXPECT_NE(table.find("sim.events"), std::string::npos);
  EXPECT_NE(table.find("123"), std::string::npos);
  EXPECT_NE(table.find("gauge"), std::string::npos);
}

TEST(Export, MetricsJsonIsWellFormed) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter("c\"quoted\"").add(1);  // name needing escaping
  reg.gauge("g").record(2);
  reg.histogram("h", {1.0, 10.0}).observe(3.5);
  std::ostringstream os;
  write_metrics_json(reg.snapshot(), os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Export, ChromeTraceParsesBackAndContainsSpans) {
  Registry reg;
  reg.set_tracing(true);
  {
    Span outer(reg, "study \"q\"", "study");  // name needing escaping
    Span inner(reg, "scheme packet", "scheme");
  }
  std::ostringstream os;
  write_chrome_trace(reg.spans(), os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("scheme packet"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// --- Study integration -----------------------------------------------------

TEST(StudySmoke, CacheCountersMatchFromCache) {
  auto& reg = Registry::global();
  reg.set_enabled(true);
  reg.set_tracing(true);
  reg.reset_values();

  core::StudyOptions opts;
  opts.corpus.limit = 3;
  opts.corpus.duration_scale = 0.1;
  opts.threads = 2;
  opts.progress = false;
  opts.cache_path = "/tmp/hps_telemetry_cache_" + std::to_string(getpid()) + ".bin";
  std::remove(opts.cache_path.c_str());

  const core::StudyResult first = core::run_study(opts);
  EXPECT_FALSE(first.from_cache);
  Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("study.cache_hits"), 0u);
  EXPECT_EQ(snap.value("study.cache_misses"), 1u);
  EXPECT_EQ(snap.value("core.traces"), 3u);
  // Simulation schemes ran a DES; the analytic model registered a zero.
  EXPECT_GT(snap.value("scheme.packet.des_events_processed"), 0u);
  EXPECT_GT(snap.value("scheme.flow.des_events_processed"), 0u);
  EXPECT_GT(snap.value("scheme.packet-flow.des_events_processed"), 0u);
  EXPECT_EQ(snap.value("scheme.mfact.des_events_processed"), 0u);
  EXPECT_GT(snap.value("scheme.mfact.model_evals"), 0u);
  // Every trace produced a per-scheme span plus its own trace span.
  std::size_t scheme_spans = 0, trace_spans = 0;
  for (const SpanRecord& s : reg.spans()) {
    scheme_spans += s.cat == std::string("scheme") ? 1 : 0;
    trace_spans += s.cat == std::string("trace") ? 1 : 0;
  }
  EXPECT_EQ(trace_spans, 3u);
  EXPECT_EQ(scheme_spans, 3u * 4u);  // mfact + three simulators per trace

  const core::StudyResult second = core::run_study(opts);
  EXPECT_TRUE(second.from_cache);
  snap = reg.snapshot();
  EXPECT_EQ(snap.value("study.cache_hits"), 1u);
  EXPECT_EQ(snap.value("study.cache_misses"), 1u);
  EXPECT_EQ(second.outcomes.size(), first.outcomes.size());

  std::remove(opts.cache_path.c_str());
  reg.set_enabled(false);
  reg.set_tracing(false);
  reg.reset_values();
}

}  // namespace
}  // namespace hps::telemetry
