// Tests for the three network models: latency/bandwidth arithmetic on an
// uncontended path, exact once-per-message delivery, contention behavior
// (exclusive reservation vs fair sharing vs congestion sampling), and model-
// specific counters. A parameterized suite runs shared invariants over all
// three models.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "des/engine.hpp"
#include "simnet/flow_model.hpp"
#include "simnet/packet_model.hpp"
#include "simnet/packetflow_model.hpp"
#include "topo/topology.hpp"

namespace hps::simnet {
namespace {

class CollectingSink final : public MessageSink {
 public:
  void message_delivered(MsgId id, SimTime at) override {
    ASSERT_FALSE(delivered.contains(id)) << "duplicate delivery of message " << id;
    delivered[id] = at;
  }
  std::map<MsgId, SimTime> delivered;
};

NetConfig test_config() {
  NetConfig c;
  c.link_bandwidth = 1e9;       // 1 GB/s -> 1 byte per ns
  c.injection_bandwidth = 1e9;
  c.software_overhead = 100;
  c.hop_latency = 50;
  c.packet_size = 1024;
  return c;
}

enum class Kind { kPacket, kFlow, kPacketFlow };

std::unique_ptr<NetworkModel> make_model(Kind k, des::Engine& eng, const topo::Topology& t,
                                         NetConfig cfg, MessageSink& sink) {
  switch (k) {
    case Kind::kPacket: return std::make_unique<PacketModel>(eng, t, cfg, sink);
    case Kind::kFlow: return std::make_unique<FlowModel>(eng, t, cfg, sink);
    case Kind::kPacketFlow: return std::make_unique<PacketFlowModel>(eng, t, cfg, sink);
  }
  return nullptr;
}

class AllModels : public ::testing::TestWithParam<Kind> {};

TEST_P(AllModels, SingleMessageTiming) {
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);  // nodes 0 and 1, one hop apart
  CollectingSink sink;
  const NetConfig cfg = test_config();
  auto model = make_model(GetParam(), eng, topo, cfg, sink);

  model->inject(1, 0, 1, 1000);
  eng.run();
  ASSERT_EQ(sink.delivered.size(), 1u);
  const SimTime t = sink.delivered.at(1);
  // Lower bound: both overheads + hop latency + serialization of 1000 B.
  EXPECT_GE(t, 2 * cfg.software_overhead + cfg.hop_latency + 1000);
  // Upper bound: generous 4x slack (store-and-forward, handshakes).
  EXPECT_LE(t, 4 * (2 * cfg.software_overhead + cfg.hop_latency + 1000));
}

TEST_P(AllModels, ZeroByteMessageCostsLatencyOnly) {
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);
  CollectingSink sink;
  const NetConfig cfg = test_config();
  auto model = make_model(GetParam(), eng, topo, cfg, sink);
  model->inject(5, 0, 1, 0);
  eng.run();
  ASSERT_EQ(sink.delivered.size(), 1u);
  EXPECT_GE(sink.delivered.at(5), 2 * cfg.software_overhead + cfg.hop_latency);
  EXPECT_LE(sink.delivered.at(5), 2 * (2 * cfg.software_overhead + cfg.hop_latency));
}

TEST_P(AllModels, LocalDeliveryBypassesNetwork) {
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);
  CollectingSink sink;
  auto model = make_model(GetParam(), eng, topo, test_config(), sink);
  model->inject(9, 1, 1, 4096);
  eng.run();
  ASSERT_EQ(sink.delivered.size(), 1u);
  // Local copies are far faster than the network would be.
  EXPECT_LT(sink.delivered.at(9), 1000);
}

TEST_P(AllModels, EveryMessageDeliveredExactlyOnce) {
  des::Engine eng;
  topo::Torus3D topo(4, 4, 1);
  CollectingSink sink;
  auto model = make_model(GetParam(), eng, topo, test_config(), sink);
  MsgId id = 0;
  for (NodeId a = 0; a < 16; ++a)
    for (NodeId b = 0; b < 16; ++b) model->inject(id++, a, b, 700 + 13 * a + b);
  eng.run();
  EXPECT_EQ(sink.delivered.size(), static_cast<std::size_t>(id));
  EXPECT_EQ(model->stats().messages, static_cast<std::uint64_t>(id));
}

TEST_P(AllModels, BiggerMessagesArriveNoEarlier) {
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);
  CollectingSink sink;
  auto model = make_model(GetParam(), eng, topo, test_config(), sink);
  model->inject(1, 0, 1, 100);
  eng.run();
  const SimTime small = sink.delivered.at(1);

  des::Engine eng2;
  CollectingSink sink2;
  auto model2 = make_model(GetParam(), eng2, topo, test_config(), sink2);
  model2->inject(2, 0, 1, 100000);
  eng2.run();
  EXPECT_GT(sink2.delivered.at(2), small);
}

TEST_P(AllModels, ContentionSlowsDelivery) {
  // Ten messages over the same link take longer (for the last) than one.
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);
  CollectingSink sink;
  auto model = make_model(GetParam(), eng, topo, test_config(), sink);
  model->inject(0, 0, 1, 10000);
  eng.run();
  const SimTime alone = sink.delivered.at(0);

  des::Engine eng2;
  CollectingSink sink2;
  auto model2 = make_model(GetParam(), eng2, topo, test_config(), sink2);
  for (MsgId i = 0; i < 10; ++i) model2->inject(i, 0, 1, 10000);
  eng2.run();
  SimTime last = 0;
  for (const auto& [id, t] : sink2.delivered) last = std::max(last, t);
  EXPECT_GT(last, 5 * alone) << "ten equal messages should take ~10x on one link";
}

INSTANTIATE_TEST_SUITE_P(Models, AllModels,
                         ::testing::Values(Kind::kPacket, Kind::kFlow, Kind::kPacketFlow),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           switch (info.param) {
                             case Kind::kPacket: return "packet";
                             case Kind::kFlow: return "flow";
                             default: return "packetflow";
                           }
                         });

TEST(PacketModel, PacketCountMatchesSegmentation) {
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);
  CollectingSink sink;
  NetConfig cfg = test_config();
  cfg.packet_size = 1000;
  PacketModel model(eng, topo, cfg, sink);
  model.inject(1, 0, 1, 2500);  // 3 packets
  model.inject(2, 0, 1, 1000);  // 1 packet
  model.inject(3, 0, 1, 0);     // still 1 packet (envelope)
  eng.run();
  EXPECT_EQ(model.stats().packets, 5u);
}

TEST(PacketModel, ExclusiveReservationSerializes) {
  // Two 10 KB messages on one link: the packet model's exclusive channel
  // reservation means total time ~2x a single message.
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);
  CollectingSink sink;
  PacketModel model(eng, topo, test_config(), sink);
  model.inject(1, 0, 1, 10000);
  model.inject(2, 0, 1, 10000);
  eng.run();
  const SimTime t1 = sink.delivered.at(1);
  const SimTime t2 = sink.delivered.at(2);
  EXPECT_GT(std::max(t1, t2), 19000);
}

TEST(FlowModel, FairSharingHalvesRate) {
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);
  CollectingSink sink;
  FlowModel model(eng, topo, test_config(), sink);
  // Two equal flows sharing one link finish together at ~2x the solo time.
  model.inject(1, 0, 1, 100000);
  model.inject(2, 0, 1, 100000);
  eng.run();
  const SimTime t1 = sink.delivered.at(1);
  const SimTime t2 = sink.delivered.at(2);
  EXPECT_NEAR(static_cast<double>(t1), static_cast<double>(t2),
              static_cast<double>(t1) * 0.02);
  EXPECT_GT(t1, 195000);
  EXPECT_LT(t1, 230000);
}

TEST(FlowModel, RippleUpdatesCounted) {
  des::Engine eng;
  topo::Torus3D topo(4, 1, 1);
  CollectingSink sink;
  FlowModel model(eng, topo, test_config(), sink);
  for (MsgId i = 0; i < 8; ++i)
    model.inject(i, static_cast<NodeId>(i % 4), static_cast<NodeId>((i + 1) % 4), 50000);
  eng.run();
  EXPECT_GT(model.stats().rate_updates, 0u);
  EXPECT_EQ(model.active_flows(), 0u);
}

TEST(FlowModel, RippleIterationsBoundedByDirtyComponent) {
  // ripple_iterations counts constraints the incremental solver visits,
  // summed over rate updates. Two link-disjoint flows (0->1 and 2->3 on a
  // directed 4-ring) each span 3 constraints — one fabric link plus the
  // injection and ejection ports — so no solve may touch more than 6, even
  // though the system holds 12 (4 links + 8 ports). A full-system re-solve
  // per update would blow the bound immediately.
  des::Engine eng;
  topo::Torus3D topo(4, 1, 1);
  CollectingSink sink;
  FlowModel model(eng, topo, test_config(), sink);
  model.inject(1, 0, 1, 100000);
  model.inject(2, 2, 3, 100000);
  eng.run();
  const NetStats st = model.stats();
  EXPECT_GT(st.ripple_iterations, 0u);
  EXPECT_LE(st.ripple_iterations, st.rate_updates * 6)
      << "a solve visited constraints outside the dirty flows' components";
}

TEST(FlowModel, DisjointFlowsDontShare) {
  des::Engine eng;
  topo::Torus3D topo(4, 1, 1);
  CollectingSink sink;
  FlowModel model(eng, topo, test_config(), sink);
  // 0->1 and 2->3 share no links (ring links are directional and disjoint).
  model.inject(1, 0, 1, 100000);
  model.inject(2, 2, 3, 100000);
  eng.run();
  // Each should finish in ~solo time (not 2x).
  EXPECT_LT(sink.delivered.at(1), 130000);
  EXPECT_LT(sink.delivered.at(2), 130000);
}

TEST(PacketFlowModel, SharedLinkCongestionSampled) {
  // 0->2 and 1->2 share the directed link 1->2 on a 4-ring. The hybrid
  // model multiplexes the channel but must charge the sampled congestion:
  // the 0->2 message is slower than when it runs alone.
  topo::Torus3D topo(4, 1, 1);
  const NetConfig cfg = test_config();

  des::Engine e1;
  CollectingSink s1;
  PacketFlowModel solo(e1, topo, cfg, s1);
  solo.inject(1, 0, 2, 40000);
  e1.run();
  const SimTime t_solo = s1.delivered.at(1);

  des::Engine e2;
  CollectingSink s2;
  PacketFlowModel contended(e2, topo, cfg, s2);
  contended.inject(1, 0, 2, 40000);
  contended.inject(2, 1, 2, 40000);
  e2.run();
  EXPECT_GT(s2.delivered.at(1), t_solo);
}

TEST(PacketFlowModel, CoarsePacketsReduceEventCount) {
  topo::Torus3D topo(2, 1, 1);
  NetConfig fine = test_config();
  fine.packet_size = 512;
  NetConfig coarse = test_config();
  coarse.packet_size = 4096;

  des::Engine e1;
  CollectingSink s1;
  PacketFlowModel m1(e1, topo, fine, s1);
  m1.inject(1, 0, 1, 64 * 1024);
  e1.run();

  des::Engine e2;
  CollectingSink s2;
  PacketFlowModel m2(e2, topo, coarse, s2);
  m2.inject(1, 0, 1, 64 * 1024);
  e2.run();

  EXPECT_GT(e1.stats().events_processed, 4 * e2.stats().events_processed);
}

TEST_P(AllModels, LinkTelemetryConservation) {
  // Every network (non-local) message charges its full byte count to each
  // link of its route; on a 2-node ring the single forward link must carry
  // exactly the sum of injected bytes.
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);
  CollectingSink sink;
  auto model = make_model(GetParam(), eng, topo, test_config(), sink);
  std::uint64_t injected = 0;
  for (MsgId i = 0; i < 20; ++i) {
    const std::uint64_t bytes = 100 + 37 * i;
    model->inject(i, 0, 1, bytes);
    injected += bytes;
  }
  model->inject(99, 1, 1, 12345);  // local: must not appear on any link
  eng.run();
  const auto& lb = model->link_bytes();
  std::uint64_t total = 0;
  for (const auto b : lb) total += b;
  EXPECT_EQ(total, injected);
  EXPECT_EQ(lb[static_cast<std::size_t>(topo.link_from(0, 0))], injected);
}

TEST_P(AllModels, MultiHopChargesEveryLink) {
  des::Engine eng;
  topo::Torus3D topo(8, 1, 1);
  CollectingSink sink;
  auto model = make_model(GetParam(), eng, topo, test_config(), sink);
  model->inject(1, 0, 3, 5000);  // 3 hops forward
  eng.run();
  const auto& lb = model->link_bytes();
  int charged = 0;
  for (const auto b : lb) {
    if (b == 0) continue;
    EXPECT_EQ(b, 5000u);
    ++charged;
  }
  EXPECT_EQ(charged, 3);
}

TEST(PacketModel, MessagePacingLimitsSingleMessageRate) {
  // With a 10x link and a paced message, the end-to-end time is governed by
  // the pacing rate, not the faster fabric.
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);
  CollectingSink sink;
  NetConfig cfg = test_config();
  cfg.link_bandwidth = 1e10;       // 10 B/ns fabric
  cfg.injection_bandwidth = 1e10;
  cfg.message_bandwidth = 1e9;     // 1 B/ns per-message pacing
  PacketModel model(eng, topo, cfg, sink);
  model.inject(1, 0, 1, 100000);
  eng.run();
  // ~100 us of pacing dominates; well above what the 10x fabric alone needs.
  EXPECT_GT(sink.delivered.at(1), 99000);
}

TEST(FlowModel, PacingCapsFlowRate) {
  des::Engine eng;
  topo::Torus3D topo(2, 1, 1);
  CollectingSink sink;
  NetConfig cfg = test_config();
  cfg.link_bandwidth = 1e10;
  cfg.injection_bandwidth = 1e10;
  cfg.message_bandwidth = 1e9;
  FlowModel model(eng, topo, cfg, sink);
  model.inject(1, 0, 1, 100000);
  eng.run();
  EXPECT_GT(sink.delivered.at(1), 99000);
  // Two paced flows on a 10x link do NOT contend: both finish ~solo time.
  des::Engine eng2;
  CollectingSink sink2;
  FlowModel model2(eng2, topo, cfg, sink2);
  model2.inject(1, 0, 1, 100000);
  model2.inject(2, 0, 1, 100000);
  eng2.run();
  EXPECT_LT(sink2.delivered.at(2), 130000);
}

}  // namespace
}  // namespace hps::simnet
