// Tests for the statistics module: logistic regression recovery of known
// coefficients, AIC behavior, stepwise selection of informative variables,
// evaluation metrics, and Monte-Carlo cross-validation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/crossval.hpp"
#include "stats/logistic.hpp"
#include "stats/stepwise.hpp"

namespace hps::stats {
namespace {

/// Synthetic dataset: y ~ Bernoulli(sigmoid(b0 + b1*x0 + b2*x1)), with
/// `noise_cols` additional pure-noise columns.
Dataset make_dataset(std::size_t n, double b0, double b1, double b2, int noise_cols,
                     std::uint64_t seed) {
  Dataset ds;
  const std::size_t p = 2 + static_cast<std::size_t>(noise_cols);
  ds.x = Matrix(n, p);
  ds.y.resize(n);
  // Built without std::string operator+ to dodge a GCC 12 -O3 -Wrestrict
  // false positive (PR105651) that -Werror turns fatal.
  for (std::size_t j = 0; j < p; ++j) {
    std::string name = "x";
    name += std::to_string(j);
    ds.names.push_back(std::move(name));
  }
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < p; ++j) ds.x(i, j) = rng.normal();
    const double z = b0 + b1 * ds.x(i, 0) + b2 * ds.x(i, 1);
    const double prob = 1.0 / (1.0 + std::exp(-z));
    ds.y[i] = rng.uniform() < prob ? 1 : 0;
  }
  return ds;
}

std::vector<std::size_t> all_rows(const Dataset& ds) {
  std::vector<std::size_t> rows(ds.n());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

TEST(Logistic, RecoversCoefficients) {
  const Dataset ds = make_dataset(4000, 0.5, 2.0, -1.5, 0, 11);
  const std::vector<int> features = {0, 1};
  const LogisticModel m = fit_logistic(ds, features);
  EXPECT_TRUE(m.converged);
  EXPECT_NEAR(m.intercept, 0.5, 0.15);
  EXPECT_NEAR(m.coef[0], 2.0, 0.25);
  EXPECT_NEAR(m.coef[1], -1.5, 0.25);
}

TEST(Logistic, PredictionAccuracyOnStrongSignal) {
  const Dataset ds = make_dataset(2000, 0.0, 4.0, 0.0, 0, 12);
  const std::vector<int> features = {0};
  const LogisticModel m = fit_logistic(ds, features);
  const SplitMetrics metrics = evaluate(m, ds, all_rows(ds));
  EXPECT_LT(metrics.misclassification, 0.15);
}

TEST(Logistic, InterceptOnlyPredictsMajority) {
  Dataset ds = make_dataset(500, 2.0, 0.0, 0.0, 0, 13);  // ~88% positives
  const LogisticModel m = fit_logistic(ds, {});
  int pos = 0;
  for (int y : ds.y) pos += y;
  EXPECT_GT(pos, 250);
  EXPECT_EQ(m.classify(ds.x.row(0)), 1);
}

TEST(Logistic, ConstantColumnGetsZeroCoefficient) {
  Dataset ds = make_dataset(500, 0.0, 2.0, 0.0, 0, 14);
  // Overwrite column 1 with a constant.
  for (std::size_t i = 0; i < ds.n(); ++i) ds.x(i, 1) = 7.0;
  const std::vector<int> features = {0, 1};
  const LogisticModel m = fit_logistic(ds, features);
  EXPECT_NEAR(m.coef[1], 0.0, 1e-6);
}

TEST(Logistic, SeparableDataStaysFinite) {
  // Perfectly separable: IRLS diverges without ridge; coefficients must stay
  // finite (the paper's CL{ncs} shows the same near-separation pattern).
  Dataset ds;
  ds.x = Matrix(40, 1);
  ds.y.resize(40);
  ds.names = {"x"};
  for (std::size_t i = 0; i < 40; ++i) {
    ds.x(i, 0) = i < 20 ? -1.0 : 1.0;
    ds.y[i] = i < 20 ? 0 : 1;
  }
  const std::vector<int> features = {0};
  const LogisticModel m = fit_logistic(ds, features);
  EXPECT_TRUE(std::isfinite(m.coef[0]));
  EXPECT_GT(m.coef[0], 1.0);  // strongly positive
  const double row_pos[1] = {1.0};
  const double row_neg[1] = {-1.0};
  EXPECT_EQ(m.classify(row_pos), 1);
  EXPECT_EQ(m.classify(row_neg), 0);
}

TEST(Logistic, AicPenalizesUselessVariables) {
  const Dataset ds = make_dataset(800, 0.0, 2.0, 0.0, 3, 15);
  const std::vector<int> just_signal = {0};
  const std::vector<int> with_noise = {0, 2, 3, 4};
  const LogisticModel a = fit_logistic(ds, just_signal);
  const LogisticModel b = fit_logistic(ds, with_noise);
  EXPECT_LT(a.aic, b.aic + 6.0);  // noise columns should not beat the penalty
}

TEST(Stepwise, SelectsInformativeVariablesFirst) {
  const Dataset ds = make_dataset(1500, 0.0, 3.0, -2.0, 6, 16);
  const StepwiseResult res = stepwise_forward(ds, all_rows(ds));
  ASSERT_GE(res.order.size(), 2u);
  // The two signal columns (0 and 1) must be the first two picks.
  EXPECT_TRUE((res.order[0] == 0 && res.order[1] == 1) ||
              (res.order[0] == 1 && res.order[1] == 0));
}

TEST(Stepwise, RespectsMaxVariables) {
  const Dataset ds = make_dataset(1000, 0.0, 1.0, 1.0, 10, 17);
  StepwiseOptions opts;
  opts.max_variables = 2;
  const StepwiseResult res = stepwise_forward(ds, all_rows(ds), {}, opts);
  EXPECT_LE(res.model.features.size(), 2u);
}

TEST(Stepwise, RespectsExclusions) {
  const Dataset ds = make_dataset(1000, 0.0, 3.0, 0.0, 2, 18);
  const std::vector<int> excluded = {0};
  const StepwiseResult res = stepwise_forward(ds, all_rows(ds), excluded);
  for (int f : res.order) EXPECT_NE(f, 0);
}

TEST(Stepwise, AicPathDecreases) {
  const Dataset ds = make_dataset(1200, 0.0, 2.5, -2.0, 4, 19);
  const StepwiseResult res = stepwise_forward(ds, all_rows(ds));
  for (std::size_t i = 1; i < res.aic_path.size(); ++i)
    EXPECT_LT(res.aic_path[i], res.aic_path[i - 1]);
}

TEST(Evaluate, ConfusionCounts) {
  Dataset ds;
  ds.x = Matrix(4, 1);
  ds.y = {1, 1, 0, 0};
  ds.names = {"x"};
  ds.x(0, 0) = 10;   // predicted 1, truth 1 -> TP
  ds.x(1, 0) = -10;  // predicted 0, truth 1 -> FN
  ds.x(2, 0) = 10;   // predicted 1, truth 0 -> FP
  ds.x(3, 0) = -10;  // predicted 0, truth 0 -> TN
  LogisticModel m;
  m.features = {0};
  m.coef = {1.0};
  m.intercept = 0.0;
  const SplitMetrics metrics = evaluate(m, ds, all_rows(ds));
  EXPECT_EQ(metrics.tp, 1);
  EXPECT_EQ(metrics.fn, 1);
  EXPECT_EQ(metrics.fp, 1);
  EXPECT_EQ(metrics.tn, 1);
  EXPECT_DOUBLE_EQ(metrics.misclassification, 0.5);
  EXPECT_DOUBLE_EQ(metrics.false_negative_rate, 0.5);
  EXPECT_DOUBLE_EQ(metrics.false_positive_rate, 0.5);
}

TEST(CrossVal, HighSuccessOnLearnableProblem) {
  const Dataset ds = make_dataset(400, 0.0, 3.0, -2.0, 4, 20);
  CrossValOptions opts;
  opts.splits = 30;  // keep the test fast
  const CrossValResult res = monte_carlo_cv(ds, opts);
  EXPECT_GT(res.success_rate(), 0.8);
  EXPECT_EQ(res.per_split.size(), 30u);
  ASSERT_FALSE(res.variables.empty());
  // The strongest variable should be selected nearly always and be 0 or 1.
  EXPECT_GE(res.variables[0].selected_fraction, 0.9);
  EXPECT_LE(res.variables[0].feature, 1);
}

TEST(CrossVal, DeterministicForSeed) {
  const Dataset ds = make_dataset(300, 0.0, 2.0, -1.0, 2, 21);
  CrossValOptions opts;
  opts.splits = 10;
  const CrossValResult a = monte_carlo_cv(ds, opts);
  const CrossValResult b = monte_carlo_cv(ds, opts);
  EXPECT_DOUBLE_EQ(a.misclassification_trimmed_mean, b.misclassification_trimmed_mean);
  opts.seed = 999;
  const CrossValResult c = monte_carlo_cv(ds, opts);
  EXPECT_NE(a.misclassification_trimmed_mean, c.misclassification_trimmed_mean);
}

TEST(CrossVal, SelectionFractionsBounded) {
  const Dataset ds = make_dataset(300, 0.5, 2.0, 0.0, 3, 22);
  CrossValOptions opts;
  opts.splits = 12;
  const CrossValResult res = monte_carlo_cv(ds, opts);
  for (const auto& v : res.variables) {
    EXPECT_GT(v.selected_fraction, 0.0);
    EXPECT_LE(v.selected_fraction, 1.0);
  }
}

}  // namespace
}  // namespace hps::stats
